"""Greedy shrinking reducer for failing fuzz instances.

A fuzz finding on a 6-process torus with 2000 states is unreadable; the
same finding on a 2-process path with 8 states is a bug report.  The
reducer repeatedly applies structural simplifications to the *AST* of a
failing instance — drop a process, drop an action, shrink a domain, drop
an assignment, replace a guard or the invariant by a sub-expression —
keeping a candidate only when it still satisfies the failure predicate,
until no transformation makes progress (a greedy first-improvement
fixpoint, the classic delta-debugging shape specialised to the DSL).

Every candidate is re-rendered to ``.stsyn`` source and recompiled through
the production pipeline before the predicate sees it, so shrinking can
never wander outside the language: an AST edit that produces an
uncompilable protocol is simply rejected.  The whole loop is
deterministic — transformations are enumerated in a fixed order and the
predicate is re-evaluated on freshly compiled instances — which keeps
minimised corpus entries reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from ..dsl.ast import (
    ActionDecl,
    BinOp,
    Domain,
    Expr,
    IntLit,
    Name,
    ProcessDecl,
    ProtocolDecl,
    UnaryOp,
    VarDecl,
)
from ..dsl.source import decl_to_source
from .generate import FuzzInstance, instance_from_source

#: the failure predicate: True while the candidate still exhibits the bug
FailurePredicate = Callable[[FuzzInstance], bool]


@dataclass
class ShrinkResult:
    instance: FuzzInstance
    #: accepted transformation count (0 = input was already minimal)
    steps: int
    #: candidates tried (accepted + rejected)
    attempts: int


# ----------------------------------------------------------------------
# expression surgery
# ----------------------------------------------------------------------
def _bool_subexprs(expr: Expr) -> list[Expr]:
    """Immediate boolean-valued sub-expressions usable as replacements."""
    if isinstance(expr, BinOp) and expr.op in ("|", "&"):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp) and expr.op == "!":
        return [expr.operand]
    return []


def _rewrite_ints(expr: Expr, old: int, new: int) -> Expr:
    """Replace every ``IntLit(old)`` with ``IntLit(new)`` (for domain
    shrinks: modulo divisors and boundary comparisons follow the domain)."""
    if isinstance(expr, IntLit):
        return IntLit(new) if expr.value == old else expr
    if isinstance(expr, UnaryOp):
        return replace(expr, operand=_rewrite_ints(expr.operand, old, new))
    if isinstance(expr, BinOp):
        return replace(
            expr,
            left=_rewrite_ints(expr.left, old, new),
            right=_rewrite_ints(expr.right, old, new),
        )
    return expr


def _map_exprs(decl: ProtocolDecl, fn: Callable[[Expr], Expr]) -> ProtocolDecl:
    processes = []
    for proc in decl.processes:
        actions = [
            replace(
                action,
                guard=fn(action.guard),
                assignments=tuple(
                    replace(a, value=fn(a.value)) for a in action.assignments
                ),
            )
            for action in proc.actions
        ]
        processes.append(replace(proc, actions=tuple(actions)))
    return replace(
        decl, processes=tuple(processes), invariant=fn(decl.invariant)
    )


# ----------------------------------------------------------------------
# candidate transformations, in decreasing order of aggressiveness
# ----------------------------------------------------------------------
def _drop_process(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    if len(decl.processes) <= 1:
        return
    for i in range(len(decl.processes)):
        kept = decl.processes[:i] + decl.processes[i + 1 :]
        yield replace(decl, processes=kept)


def _drop_variable(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    """Drop a variable no process or expression mentions any more."""
    from ..dsl.ast import free_names

    used: set[str] = set(free_names(decl.invariant))
    for proc in decl.processes:
        used.update(proc.reads)
        used.update(proc.writes)
        for action in proc.actions:
            used.update(free_names(action.guard))
            for a in action.assignments:
                used.add(a.target)
                used.update(free_names(a.value))
    for vi, var in enumerate(decl.variables):
        kept_names = tuple(n for n in var.names if n in used)
        if len(kept_names) == len(var.names):
            continue
        variables = list(decl.variables)
        if kept_names:
            variables[vi] = replace(var, names=kept_names)
        else:
            del variables[vi]
        if any(v.names for v in variables):
            yield replace(decl, variables=tuple(variables))


def _drop_action(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    for pi, proc in enumerate(decl.processes):
        if len(proc.actions) <= 1:
            continue
        for ai in range(len(proc.actions)):
            actions = proc.actions[:ai] + proc.actions[ai + 1 :]
            processes = list(decl.processes)
            processes[pi] = replace(proc, actions=actions)
            yield replace(decl, processes=tuple(processes))


def _shrink_domain(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    for vi, var in enumerate(decl.variables):
        old = var.domain.size
        if old <= 2:
            continue
        new = old - 1
        labels = var.domain.labels[:new] if var.domain.labels else None
        variables = list(decl.variables)
        variables[vi] = replace(var, domain=Domain(size=new, labels=labels))
        shrunk = replace(decl, variables=tuple(variables))
        yield _map_exprs(shrunk, lambda e: _rewrite_ints(e, old, new))


def _drop_assignment(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    for pi, proc in enumerate(decl.processes):
        for ai, action in enumerate(proc.actions):
            if len(action.assignments) <= 1:
                continue
            for si in range(len(action.assignments)):
                assigns = (
                    action.assignments[:si] + action.assignments[si + 1 :]
                )
                actions = list(proc.actions)
                actions[ai] = replace(action, assignments=assigns)
                processes = list(decl.processes)
                processes[pi] = replace(proc, actions=tuple(actions))
                yield replace(decl, processes=tuple(processes))


def _simplify_guards(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    for pi, proc in enumerate(decl.processes):
        for ai, action in enumerate(proc.actions):
            for sub in _bool_subexprs(action.guard):
                actions = list(proc.actions)
                actions[ai] = replace(action, guard=sub)
                processes = list(decl.processes)
                processes[pi] = replace(proc, actions=tuple(actions))
                yield replace(decl, processes=tuple(processes))


def _simplify_invariant(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    for sub in _bool_subexprs(decl.invariant):
        yield replace(decl, invariant=sub)


def _zero_assignments(decl: ProtocolDecl) -> Iterator[ProtocolDecl]:
    for pi, proc in enumerate(decl.processes):
        for ai, action in enumerate(proc.actions):
            for si, assign in enumerate(action.assignments):
                if isinstance(assign.value, IntLit):
                    continue
                assigns = list(action.assignments)
                assigns[si] = replace(assign, value=IntLit(0))
                actions = list(proc.actions)
                actions[ai] = replace(action, assignments=tuple(assigns))
                processes = list(decl.processes)
                processes[pi] = replace(proc, actions=tuple(actions))
                yield replace(decl, processes=tuple(processes))


_TRANSFORMS: tuple[Callable[[ProtocolDecl], Iterator[ProtocolDecl]], ...] = (
    _drop_process,
    _drop_action,
    _shrink_domain,
    _drop_variable,
    _drop_assignment,
    _simplify_guards,
    _simplify_invariant,
    _zero_assignments,
)


def _compile_candidate(
    decl: ProtocolDecl, seed: int
) -> FuzzInstance | None:
    try:
        return instance_from_source(decl_to_source(decl), seed=seed)
    except Exception:
        return None


def shrink_instance(
    instance: FuzzInstance,
    predicate: FailurePredicate,
    *,
    max_attempts: int = 2000,
) -> ShrinkResult:
    """Minimise ``instance`` while ``predicate`` keeps holding.

    ``predicate`` is called on freshly compiled candidates only; a
    predicate that raises rejects the candidate (the bug under
    investigation must be re-detected, not crash the reducer).
    """
    current = instance
    steps = 0
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for transform in _TRANSFORMS:
            for decl in transform(current.decl):
                if attempts >= max_attempts:
                    break
                attempts += 1
                candidate = _compile_candidate(decl, instance.seed)
                if candidate is None:
                    continue
                try:
                    still_failing = predicate(candidate)
                except Exception:
                    continue
                if still_failing:
                    current = candidate
                    steps += 1
                    improved = True
                    break  # restart the transformation ladder from the top
            if improved:
                break
    return ShrinkResult(instance=current, steps=steps, attempts=attempts)


def failure_predicate_for(
    oracle_names, reference_findings, ctx=None
) -> FailurePredicate:
    """The standard predicate: the same oracle still reports *some* finding.

    Matching on the oracle name (not the message) is the usual
    delta-debugging compromise: messages embed state names and counts that
    legitimately change as the instance shrinks.
    """
    from .oracles import OracleContext, run_oracles

    wanted = {f.oracle for f in reference_findings}

    def predicate(candidate: FuzzInstance) -> bool:
        findings = run_oracles(
            candidate, list(oracle_names), ctx or OracleContext()
        )
        return bool(wanted & {f.oracle for f in findings})

    return predicate
