"""The differential oracle bank.

Each oracle inspects one redundancy seam of the system and reports
:class:`Finding`s when the two sides of the seam disagree:

``verdict``      explicit vs symbolic full stabilization verdict
                 (closure, deadlocks, cycles, unrecoverable states);
``ranks``        ``ComputeRanks`` rank partition, explicit vs symbolic;
``sccs``         cyclic SCCs of ``δp | ¬I``: compiled Tarjan vs Gentilini
                 vs Xie-Beerel;
``strong_weak``  Theorem IV.1 consistency: weak synthesis succeeds iff the
                 ranking admits stabilization, strong success implies weak,
                 weak winners re-verified;
``engines``      single-config strong synthesis, explicit vs symbolic —
                 same outcome, same pass, same synthesized group sets;
``cert``         every winner certified, the certificate accepted by the
                 independent checker on *both* engines, and the winner
                 re-verified by ``check_solution``;
``daemons``      synthesized strong winners must converge from every probed
                 state under random, round-robin and adversarial daemons
                 within ``|S|`` steps (acyclicity outside ``I`` bounds every
                 schedule);
``portfolio``    serial portfolio vs multi-process supervised race — same
                 success verdict (opt-in: spawns worker processes).

Oracles share one per-instance memo (``instance.cache``) so the expensive
artifacts — symbolic encoding, rankings, synthesis runs — are computed once
per instance no matter how many oracles consume them.

Deliberate corruption for the mutation-sanity suite enters through
``OracleContext.mutate(site, value)``: a planted
:class:`~repro.fuzz.mutants.Mutation` intercepts a named site (a winner's
group sets, a certificate payload, a symbolic rank partition) and the
suite asserts the oracles catch it.  With no mutation installed the hooks
are identity functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.exceptions import (
    HeuristicFailure,
    NoStabilizingVersionError,
    NotClosedError,
    UnresolvableCycleError,
)
from ..core.heuristic import add_strong_convergence
from ..core.weak import synthesize_weak
from ..explicit.graph import TransitionView
from ..explicit.scc import cyclic_sccs
from ..faults.daemons import daemon_portfolio
from ..faults.simulator import run as simulate
from ..symbolic import (
    SymbolicProtocol,
    add_strong_convergence_symbolic,
    compute_ranks_symbolic,
    gentilini_sccs,
    lockstep_sccs,
    xie_beerel_sccs,
)
from ..verify import (
    analyze_stabilization,
    analyze_stabilization_symbolic,
    check_solution,
)
from ..verify.closure import is_closed
from .generate import FuzzInstance

#: exceptions that are *answers* (complete negative results), not crashes —
#: both engines must raise the same one on the same input
_ANSWER_ERRORS = (
    NotClosedError,
    NoStabilizingVersionError,
    UnresolvableCycleError,
    HeuristicFailure,
)


@dataclass(frozen=True)
class Finding:
    """One oracle disagreement on one instance."""

    oracle: str
    message: str
    seed: int = -1
    instance: str = ""

    def describe(self) -> str:
        return f"[{self.oracle}] seed={self.seed} {self.instance}: {self.message}"


@dataclass
class OracleContext:
    """Per-run context handed to every oracle."""

    mutation: "object | None" = None  # a repro.fuzz.mutants.Mutation
    #: cap on simulator steps (defaults to |S| + 1 per run)
    max_sim_steps: int | None = None
    #: start-state sample size for the daemon oracle
    daemon_probes: int = 12
    #: workers used by the (opt-in) portfolio oracle
    portfolio_workers: int = 2

    def mutate(self, site: str, instance: FuzzInstance, value):
        if self.mutation is None:
            return value
        return self.mutation.apply(site, instance, value)


Oracle = Callable[[FuzzInstance, OracleContext], list[Finding]]


def _finding(instance: FuzzInstance, oracle: str, message: str) -> Finding:
    return Finding(
        oracle=oracle,
        message=message,
        seed=instance.seed,
        instance=instance.describe(),
    )


# ----------------------------------------------------------------------
# shared per-instance artifacts (memoised on instance.cache)
# ----------------------------------------------------------------------
def _memo(instance: FuzzInstance, key: str, build: Callable[[], object]):
    if key not in instance.cache:
        instance.cache[key] = build()
    return instance.cache[key]


def _sp(instance: FuzzInstance) -> tuple[SymbolicProtocol, int]:
    def build():
        sp = SymbolicProtocol(instance.protocol)
        return sp, sp.sym.from_predicate(instance.invariant)

    return _memo(instance, "sp", build)


def _explicit_ranking(instance: FuzzInstance):
    from ..core.ranking import compute_ranks

    return _memo(
        instance,
        "ranking",
        lambda: compute_ranks(instance.protocol, instance.invariant),
    )


def _outcome(fn: Callable[[], object]) -> tuple[str, object]:
    """Run an engine entry point; fold answer-class errors into the outcome."""
    try:
        return ("ok", fn())
    except _ANSWER_ERRORS as exc:
        return (type(exc).__name__, exc)


def _strong_explicit(instance: FuzzInstance) -> tuple[str, object]:
    return _memo(
        instance,
        "strong_explicit",
        lambda: _outcome(
            lambda: add_strong_convergence(instance.protocol, instance.invariant)
        ),
    )


def _strong_symbolic(instance: FuzzInstance) -> tuple[str, object]:
    def build():
        # a fresh encoding: the oracle must not share synthesis state with
        # the verdict/rank checks done on the memoised SymbolicProtocol
        sp = SymbolicProtocol(instance.protocol)
        inv = sp.sym.from_predicate(instance.invariant)
        return _outcome(
            lambda: add_strong_convergence_symbolic(
                instance.protocol, inv, sp=sp
            )
        )

    return _memo(instance, "strong_symbolic", build)


def _weak_outcome(instance: FuzzInstance) -> tuple[str, object]:
    return _memo(
        instance,
        "weak",
        lambda: _outcome(
            lambda: synthesize_weak(
                instance.protocol, instance.invariant, minimize=True
            )
        ),
    )


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------
def oracle_verdict(
    instance: FuzzInstance, ctx: OracleContext
) -> list[Finding]:
    """Full stabilization verdict: explicit vs symbolic engine."""
    protocol, invariant = instance.protocol, instance.invariant
    explicit = analyze_stabilization(protocol, invariant)
    sp, inv = _sp(instance)
    symbolic = analyze_stabilization_symbolic(protocol, inv, sp=sp)
    findings = []
    if explicit.closed != symbolic.closed:
        findings.append(
            _finding(
                instance,
                "verdict",
                f"closure disagrees: explicit={explicit.closed} "
                f"symbolic={symbolic.closed}",
            )
        )
    if explicit.n_deadlocks != symbolic.n_deadlocks:
        findings.append(
            _finding(
                instance,
                "verdict",
                f"deadlock count disagrees: explicit={explicit.n_deadlocks} "
                f"symbolic={symbolic.n_deadlocks}",
            )
        )
    if bool(explicit.n_cycle_states) != symbolic.has_cycles:
        findings.append(
            _finding(
                instance,
                "verdict",
                f"cycle detection disagrees: explicit sees "
                f"{explicit.n_cycle_states} cycle states, symbolic "
                f"has_cycles={symbolic.has_cycles}",
            )
        )
    if explicit.n_unrecoverable != symbolic.n_unrecoverable:
        findings.append(
            _finding(
                instance,
                "verdict",
                f"unrecoverable count disagrees: "
                f"explicit={explicit.n_unrecoverable} "
                f"symbolic={symbolic.n_unrecoverable}",
            )
        )
    return findings


def oracle_ranks(instance: FuzzInstance, ctx: OracleContext) -> list[Finding]:
    """``ComputeRanks``: identical p_im groups and rank partition."""
    explicit = _explicit_ranking(instance)
    sp, inv = _sp(instance)
    symbolic = compute_ranks_symbolic(sp, inv)
    findings = []
    if symbolic.pim_groups != explicit.pim_groups:
        findings.append(
            _finding(instance, "ranks", "p_im group sets differ between engines")
        )
    sym_masks = [sp.sym.to_mask(r) for r in symbolic.ranks]
    sym_masks = ctx.mutate("ranks.symbolic_masks", instance, sym_masks)
    if len(sym_masks) - 1 != explicit.max_rank:
        findings.append(
            _finding(
                instance,
                "ranks",
                f"max rank differs: explicit={explicit.max_rank} "
                f"symbolic={len(sym_masks) - 1}",
            )
        )
    for i, mask in enumerate(sym_masks):
        if i > explicit.max_rank or not np.array_equal(
            mask, explicit.rank_mask(i)
        ):
            findings.append(
                _finding(
                    instance,
                    "ranks",
                    f"Rank[{i}] state set differs between engines",
                )
            )
            break
    if not np.array_equal(
        sp.sym.to_mask(symbolic.unreachable), explicit.infinite_mask
    ):
        findings.append(
            _finding(instance, "ranks", "rank-infinity set differs between engines")
        )
    return findings


def _explicit_scc_sets(instance: FuzzInstance) -> set[frozenset[int]]:
    protocol, invariant = instance.protocol, instance.invariant
    view = TransitionView.of_protocol(protocol)
    sccs = cyclic_sccs(view, protocol.space.size, ~invariant.mask)
    return {frozenset(map(int, c)) for c in sccs}


def oracle_sccs(instance: FuzzInstance, ctx: OracleContext) -> list[Finding]:
    """Cyclic SCCs of ``δp | ¬I``: Tarjan vs Gentilini vs Xie-Beerel vs lockstep."""
    explicit = _explicit_scc_sets(instance)
    sp, inv = _sp(instance)
    sym = sp.sym
    not_i = sym.bdd.diff(sym.domain_cur, inv)
    relations = sp.relations_for(instance.protocol.groups)
    findings = []
    for name, algorithm in (
        ("gentilini", gentilini_sccs),
        ("xie_beerel", xie_beerel_sccs),
        ("lockstep", lockstep_sccs),
    ):
        sccs = algorithm(sym, relations, not_i)
        symbolic = {
            frozenset(np.flatnonzero(sym.to_mask(c)).tolist()) for c in sccs
        }
        symbolic = ctx.mutate("sccs.symbolic", instance, symbolic)
        if symbolic != explicit:
            only_sym = len(symbolic - explicit)
            only_exp = len(explicit - symbolic)
            findings.append(
                _finding(
                    instance,
                    "sccs",
                    f"{name} SCCs differ from Tarjan: "
                    f"{only_sym} only-symbolic, {only_exp} only-explicit",
                )
            )
    return findings


def oracle_strong_weak(
    instance: FuzzInstance, ctx: OracleContext
) -> list[Finding]:
    """Theorem IV.1 consistency between the strong and weak passes."""
    protocol, invariant = instance.protocol, instance.invariant
    closed = is_closed(protocol, invariant)
    weak_kind, weak = _weak_outcome(instance)
    strong_kind, strong = _strong_explicit(instance)
    findings = []

    if not closed:
        # both paths must refuse with NotClosedError, never "succeed"
        for label, kind in (("weak", weak_kind), ("strong", strong_kind)):
            if kind not in ("NotClosedError",):
                findings.append(
                    _finding(
                        instance,
                        "strong_weak",
                        f"I not closed but {label} synthesis returned "
                        f"{kind} instead of NotClosedError",
                    )
                )
        return findings

    ranking = _explicit_ranking(instance)
    admits = ranking.admits_stabilization()
    weak_success = weak_kind == "ok"
    if weak_success != admits:
        findings.append(
            _finding(
                instance,
                "strong_weak",
                f"weak synthesis {weak_kind} but ranking admits_stabilization"
                f"={admits} (Theorem IV.1 violated)",
            )
        )
    if strong_kind == "ok" and strong.success and not admits:
        findings.append(
            _finding(
                instance,
                "strong_weak",
                "strong synthesis succeeded on an instance whose ranking "
                "proves no stabilizing version exists",
            )
        )
    if weak_success:
        check = check_solution(
            protocol, weak.protocol, invariant, mode="weak"
        )
        if not check.ok:
            findings.append(
                _finding(
                    instance,
                    "strong_weak",
                    f"weak winner failed independent verification: {check}",
                )
            )
    return findings


def oracle_engines(
    instance: FuzzInstance, ctx: OracleContext
) -> list[Finding]:
    """Single-config strong synthesis: explicit vs symbolic, exact match."""
    exp_kind, explicit = _strong_explicit(instance)
    sym_kind, symbolic = _strong_symbolic(instance)
    findings = []
    if exp_kind != sym_kind:
        findings.append(
            _finding(
                instance,
                "engines",
                f"outcome class differs: explicit={exp_kind} "
                f"symbolic={sym_kind}",
            )
        )
        return findings
    if exp_kind != "ok":
        return findings  # same complete negative answer on both engines
    if explicit.success != symbolic.success:
        findings.append(
            _finding(
                instance,
                "engines",
                f"success differs: explicit={explicit.success} "
                f"symbolic={symbolic.success}",
            )
        )
        return findings
    if explicit.pass_completed != symbolic.pass_completed:
        findings.append(
            _finding(
                instance,
                "engines",
                f"pass_completed differs: explicit={explicit.pass_completed} "
                f"symbolic={symbolic.pass_completed}",
            )
        )
    if explicit.success and symbolic.pss_groups != explicit.protocol.groups:
        findings.append(
            _finding(
                instance,
                "engines",
                "synthesized group sets differ between engines",
            )
        )
    return findings


def oracle_cert(instance: FuzzInstance, ctx: OracleContext) -> list[Finding]:
    """Certificate round-trip: emit, check on both engines, re-verify winner."""
    from ..cert import (
        CertificateError,
        CertificateViolation,
        ConvergenceCertificate,
        check_certificate_symbolic,
        validate_certificate,
    )

    protocol, invariant = instance.protocol, instance.invariant
    findings = []
    winners = []
    strong_kind, strong = _strong_explicit(instance)
    if strong_kind == "ok" and strong.success:
        groups = [set(g) for g in strong.protocol.groups]
        groups = ctx.mutate("winner.groups", instance, groups)
        winners.append(("strong", strong, protocol.with_groups(groups)))
    weak_kind, weak = _weak_outcome(instance)
    if weak_kind == "ok":
        winners.append(("weak", weak, weak.protocol))

    for mode, result, winner_protocol in winners:
        expected_pss = [set(g) for g in winner_protocol.groups]
        check = check_solution(
            protocol, winner_protocol, invariant, mode=mode
        )
        if not check.ok:
            findings.append(
                _finding(
                    instance,
                    "cert",
                    f"{mode} winner rejected by check_solution: {check}",
                )
            )
        try:
            payload = result.certificate().to_payload()
        except Exception as exc:  # emission must never fail on a winner
            findings.append(
                _finding(
                    instance,
                    "cert",
                    f"{mode} certificate emission failed: {exc!r}",
                )
            )
            continue
        payload = ctx.mutate("cert.payload", instance, payload)
        try:
            cert = ConvergenceCertificate.from_payload(payload)
        except CertificateError as exc:
            findings.append(
                _finding(
                    instance,
                    "cert",
                    f"{mode} certificate payload unreadable: {exc}",
                )
            )
            continue
        check_exp, violation = validate_certificate(
            protocol, invariant, cert, expected_pss=expected_pss
        )
        if violation is not None:
            findings.append(
                _finding(
                    instance,
                    "cert",
                    f"{mode} certificate rejected by explicit checker: "
                    f"{violation.describe()}",
                )
            )
        sym_ok = True
        try:
            check_certificate_symbolic(
                protocol, invariant, cert, expected_pss=expected_pss
            )
        except (CertificateViolation, CertificateError) as exc:
            sym_ok = False
            sym_detail = str(exc)
        if sym_ok != (violation is None):
            findings.append(
                _finding(
                    instance,
                    "cert",
                    f"{mode} certificate verdict differs between checker "
                    f"engines: explicit_ok={violation is None} "
                    f"symbolic_ok={sym_ok}",
                )
            )
        elif not sym_ok and violation is None:  # pragma: no cover
            findings.append(
                _finding(instance, "cert", f"symbolic rejection: {sym_detail}")
            )
    return findings


def oracle_daemons(
    instance: FuzzInstance, ctx: OracleContext
) -> list[Finding]:
    """Randomized daemons as fuzz schedules over strong winners.

    Strong convergence means *every* maximal computation from every state
    reaches ``I``; since ``pss | ¬I`` is acyclic, any daemon must reach the
    invariant within ``|S|`` steps.  Probes a deterministic sample of start
    states under each daemon of :func:`repro.faults.daemons.daemon_portfolio`.
    """
    strong_kind, strong = _strong_explicit(instance)
    if strong_kind != "ok" or not strong.success:
        return []
    winner = strong.protocol
    invariant = instance.invariant
    space = winner.space
    findings = []
    n_probes = min(ctx.daemon_probes, space.size)
    stride = max(1, space.size // n_probes)
    probes = list(range(0, space.size, stride))[:n_probes]
    max_steps = ctx.max_sim_steps or (space.size + 1)
    for daemon_name, daemon in daemon_portfolio(
        invariant.mask, seed=instance.seed & 0x7FFFFFFF
    ):
        for start in probes:
            daemon.reset()
            trace = simulate(
                winner,
                start,
                invariant=invariant,
                daemon=daemon,
                max_steps=max_steps,
            )
            if not trace.converged:
                findings.append(
                    _finding(
                        instance,
                        "daemons",
                        f"strong winner failed to converge from state "
                        f"{space.format_state(start)} under the "
                        f"{daemon_name} daemon within {max_steps} steps",
                    )
                )
                break  # one counterexample per daemon is enough
    return findings


def oracle_portfolio(
    instance: FuzzInstance, ctx: OracleContext
) -> list[Finding]:
    """Serial portfolio vs the supervised multi-process race (opt-in)."""
    from ..core.synthesizer import synthesize
    from ..parallel import synthesize_parallel
    from .generate import compile_instance

    protocol, invariant = instance.protocol, instance.invariant
    serial_kind, serial = _memo(
        instance,
        "serial_portfolio",
        lambda: _outcome(lambda: synthesize(protocol, invariant)),
    )
    parallel_kind, parallel = _outcome(
        lambda: synthesize_parallel(
            compile_instance,
            (instance.source,),
            n_workers=ctx.portfolio_workers,
        )
    )
    findings = []
    if serial_kind != parallel_kind:
        findings.append(
            _finding(
                instance,
                "portfolio",
                f"outcome class differs: serial={serial_kind} "
                f"parallel={parallel_kind}",
            )
        )
        return findings
    if serial_kind != "ok":
        return findings
    winner, _completed = parallel
    if serial.success != winner.success:
        findings.append(
            _finding(
                instance,
                "portfolio",
                f"winner disagrees: serial success={serial.success} "
                f"parallel success={winner.success}",
            )
        )
    elif winner.success:
        check = check_solution(
            protocol,
            protocol.with_groups([set(map(tuple, g)) for g in winner.pss_groups]),
            invariant,
        )
        if not check.ok:
            findings.append(
                _finding(
                    instance,
                    "portfolio",
                    f"parallel winner failed independent verification: {check}",
                )
            )
    return findings


#: the full bank; iteration order is the (deterministic) execution order
ORACLES: dict[str, Oracle] = {
    "verdict": oracle_verdict,
    "ranks": oracle_ranks,
    "sccs": oracle_sccs,
    "strong_weak": oracle_strong_weak,
    "engines": oracle_engines,
    "cert": oracle_cert,
    "daemons": oracle_daemons,
    "portfolio": oracle_portfolio,
}

#: in-process oracles run on every iteration by default; ``portfolio``
#: spawns worker processes and is opt-in (``--oracle all`` / ``portfolio``)
DEFAULT_ORACLES: tuple[str, ...] = (
    "verdict",
    "ranks",
    "sccs",
    "strong_weak",
    "engines",
    "cert",
    "daemons",
)


def resolve_oracles(names: Sequence[str] | None) -> list[str]:
    """Expand CLI oracle selections (``default``, ``all``, or explicit)."""
    if not names:
        return list(DEFAULT_ORACLES)
    out: list[str] = []
    for name in names:
        if name == "default":
            out.extend(DEFAULT_ORACLES)
        elif name == "all":
            out.extend(ORACLES)
        elif name in ORACLES:
            out.append(name)
        else:
            raise ValueError(
                f"unknown oracle {name!r}; known: {', '.join(ORACLES)}"
            )
    seen: set[str] = set()
    return [n for n in out if not (n in seen or seen.add(n))]


def run_oracles(
    instance: FuzzInstance,
    oracle_names: Sequence[str],
    ctx: OracleContext | None = None,
) -> list[Finding]:
    """Run the named oracles; engine crashes become findings too."""
    ctx = ctx or OracleContext()
    findings: list[Finding] = []
    for name in oracle_names:
        try:
            findings.extend(ORACLES[name](instance, ctx))
        except Exception as exc:
            findings.append(
                _finding(
                    instance,
                    name,
                    f"oracle crashed: {type(exc).__name__}: {exc}",
                )
            )
    return findings
