"""Planted bugs for the mutation-testing sanity suite.

A fuzzer that never fires is indistinguishable from a perfect codebase.
This module closes that loop: each :class:`Mutation` deliberately corrupts
one artifact *inside* the oracle bank — at a named
:meth:`~repro.fuzz.oracles.OracleContext.mutate` site — imitating a known
bug class, and ``tests/test_fuzz_mutation.py`` asserts that the oracles
report a finding within a bounded iteration budget and that the shrinker
minimises the triggering instance to a small corpus entry.

The planted classes mirror the ISSUE's list:

``flip_guard``     a synthesized winner silently gains a transition whose
                   guard was flipped (wrong recovery action survives
                   verification gaps);
``corrupt_rank``   a certificate's ranking payload is tampered
                   (:func:`repro.cert.tamper_certificate_payload`);
``drop_delta``     a delta group is dropped from a certificate's ``added``
                   list (the witness no longer reconstructs the winner);
``phantom_scc``    a symbolic SCC algorithm reports a spurious component;
``shift_rank``     the symbolic rank partition misplaces one state.

Mutations are deterministic functions of the instance seed, so a mutant
run is exactly as reproducible as a clean one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..cert import tamper_certificate_payload
from .generate import FuzzInstance

MutatorFn = Callable[[FuzzInstance, object], object]


@dataclass
class Mutation:
    """One planted bug: a transform applied at one named oracle site."""

    name: str
    site: str
    transform: MutatorFn
    #: sites this mutation actually fired on (for the sanity suite)
    applied: list[int] = field(default_factory=list)

    def apply(self, site: str, instance: FuzzInstance, value):
        if site != self.site:
            return value
        mutated = self.transform(instance, value)
        if mutated is not value:
            self.applied.append(instance.seed)
        return mutated


def _rng_for(instance: FuzzInstance, salt: int) -> random.Random:
    return random.Random(instance.seed * 7_919 + salt)


# ----------------------------------------------------------------------
# the planted bug classes
# ----------------------------------------------------------------------
def _flip_guard(instance: FuzzInstance, groups):
    """Enable a winner transition whose guard should be false.

    Picks a process and a (rcode, wcode) pair *not* in its group sets and
    adds it as a singleton group — exactly the artifact of a guard whose
    polarity was flipped during synthesis.
    """
    rng = _rng_for(instance, 1)
    protocol = instance.protocol
    order = list(range(len(groups)))
    rng.shuffle(order)
    for j in order:
        table = protocol.tables[j]
        present = set(groups[j])
        candidates = [
            (r, w)
            for r in range(table.n_rvals)
            for w in range(table.n_wvals)
            # skip the pure self-loop column and existing groups
            if (r, w) not in present and w != int(table.self_wcode[r])
        ]
        if candidates:
            mutated = [set(g) for g in groups]
            mutated[j].add(candidates[rng.randrange(len(candidates))])
            return mutated
    return groups  # no room to flip anything (reported via .applied)


def _corrupt_rank(instance: FuzzInstance, payload):
    """Tamper the certificate ranking — the PR-5 trust model's bug class."""
    return tamper_certificate_payload(payload)


def _drop_delta(instance: FuzzInstance, payload):
    """Silently lose one added delta group from the certificate witness."""
    added = payload.get("added") or []
    if not added:
        return payload
    rng = _rng_for(instance, 3)
    mutated = dict(payload)
    kept = list(added)
    kept.pop(rng.randrange(len(kept)))
    mutated["added"] = kept
    return mutated


def _phantom_scc(instance: FuzzInstance, sccs):
    """Report a cyclic SCC that is not there (symbolic SCC bug class)."""
    size = instance.protocol.space.size
    rng = _rng_for(instance, 4)
    phantom = frozenset({rng.randrange(size)})
    mutated = set(sccs)
    mutated.add(phantom)
    return mutated


def _shift_rank(instance: FuzzInstance, masks):
    """Move one state from its true rank into rank 0 (BFS off-by-one)."""
    import numpy as np

    for i in range(1, len(masks)):
        idx = np.flatnonzero(masks[i])
        if idx.size:
            mutated = [m.copy() for m in masks]
            mutated[i][idx[0]] = False
            mutated[0][idx[0]] = True
            return mutated
    return masks


MUTATIONS: dict[str, Callable[[], Mutation]] = {
    "flip_guard": lambda: Mutation(
        "flip_guard", "winner.groups", _flip_guard
    ),
    "corrupt_rank": lambda: Mutation(
        "corrupt_rank", "cert.payload", _corrupt_rank
    ),
    "drop_delta": lambda: Mutation("drop_delta", "cert.payload", _drop_delta),
    "phantom_scc": lambda: Mutation(
        "phantom_scc", "sccs.symbolic", _phantom_scc
    ),
    "shift_rank": lambda: Mutation(
        "shift_rank", "ranks.symbolic_masks", _shift_rank
    ),
}


def make_mutation(name: str) -> Mutation:
    """A fresh mutation instance for one planted bug class."""
    try:
        return MUTATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; known: {', '.join(MUTATIONS)}"
        ) from None
