"""Seeded random protocol generator — the front end of the fuzz harness.

Every instance is generated at the *AST* level (a
:class:`~repro.dsl.ast.ProtocolDecl`), then rendered to ``.stsyn`` source
and compiled with the production DSL pipeline.  That buys three things at
once: the generator exercises the parser/printer round-trip on every
instance, failing cases are portable (a corpus entry is just source text),
and the multi-process portfolio can rebuild the instance from source in a
spawn-started worker.

The distribution model is topology-shaped: rings, paths, grids, tori and
Erdős–Rényi graphs, one variable per process, with random *read
restrictions* (a process may be blinded to some neighbours — the
read/write-restriction axis of Section II).  Guards are random boolean
combinations of equality/ordering atoms over the readable variables;
assignments are constants or modular neighbour offsets, so every written
value stays in-domain by construction.

Determinism: all randomness flows from one ``random.Random(seed)``; the
same ``(seed, config)`` always yields byte-identical source.  Instances
that fail to compile (e.g. a guard that only produces stutters) are
rejection-sampled away with a deterministic sub-seed sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..dsl.ast import (
    ActionDecl,
    Assignment,
    BinOp,
    Domain,
    Expr,
    IntLit,
    Name,
    ProcessDecl,
    ProtocolDecl,
    UnaryOp,
    VarDecl,
)
from ..dsl.eval import CompileError, compile_protocol
from ..dsl.minimize import minimize_cover
from ..dsl.source import decl_to_source
from ..explicit.graph import TransitionView, forward_reachable
from ..protocol.actions import ActionCompileError
from ..protocol.predicate import Predicate
from ..protocol.protocol import Protocol

TOPOLOGIES = ("ring", "path", "grid", "torus", "erdos_renyi")

#: value labels used (rarely) instead of numeric domains, so the fuzz loop
#: also covers the label-constant path of the compiler; label ``lN`` is
#: globally pinned to value ``N``, which keeps multi-domain files consistent.
_LABELS = ("l0", "l1", "l2", "l3")


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and shape knobs of the generator (all deterministic per seed)."""

    topologies: tuple[str, ...] = TOPOLOGIES
    min_processes: int = 2
    max_processes: int = 6
    #: per-variable domain sizes are drawn from [2, max_domain]
    max_domain: int = 3
    #: hard cap on the explicit state count |S| (product of domains); the
    #: differential oracles materialise per-state arrays on both engines
    max_states: int = 2048
    max_actions_per_process: int = 3
    #: probability that a neighbour read survives (read restriction)
    read_keep_prob: float = 0.85
    #: probability of a labelled (rather than numeric) domain
    label_prob: float = 0.15
    #: probability of generating the invariant as a *closed-by-construction*
    #: forward-reachable set (encoded as a minimised DNF) instead of a
    #: random expression
    closed_invariant_prob: float = 0.55
    #: closed invariants larger than this many minterm cubes fall back to a
    #: random-expression invariant (keeps sources readable and parse cheap)
    max_invariant_cubes: int = 48
    #: rejection-sampling budget before giving up on a seed
    max_rejects: int = 64


@dataclass
class FuzzInstance:
    """One generated instance, carried through oracles and shrinking."""

    seed: int
    decl: ProtocolDecl
    source: str
    protocol: Protocol
    invariant: Predicate
    topology: str
    #: how many candidate declarations were rejected before this one compiled
    rejects: int = 0
    #: per-instance memo shared by the oracle bank (engines, rankings, ...)
    cache: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.decl.name

    def describe(self) -> str:
        return (
            f"{self.name} [{self.topology}] "
            f"K={self.protocol.n_processes} |S|={self.protocol.space.size} "
            f"groups={self.protocol.n_groups()}"
        )


class GenerationError(RuntimeError):
    """A seed exhausted its rejection budget without compiling."""


def compile_instance(source_or_decl) -> tuple[Protocol, Predicate]:
    """Compile fuzz source/AST with the harness's compile options.

    Random actions routinely produce stutter results (``x := x``); those are
    legal no-ops under the group model, so the fuzz dialect compiles with
    ``allow_self_loops=True`` (stutters silently dropped) — corpus replay
    must use this wrapper, not the CLI's strict default.
    """
    return compile_protocol(source_or_decl, allow_self_loops=True)


# ----------------------------------------------------------------------
# topology shapes: process index -> sorted neighbour indices
# ----------------------------------------------------------------------
def _ring_neighbours(n: int) -> list[list[int]]:
    return [sorted({(j - 1) % n, (j + 1) % n} - {j}) for j in range(n)]


def _path_neighbours(n: int) -> list[list[int]]:
    return [
        sorted({j - 1, j + 1} & set(range(n)))
        for j in range(n)
    ]


def _grid_neighbours(rows: int, cols: int, *, wrap: bool) -> list[list[int]]:
    def idx(r: int, c: int) -> int:
        return r * cols + c

    out: list[list[int]] = []
    for r in range(rows):
        for c in range(cols):
            nbrs: set[int] = set()
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                rr, cc = r + dr, c + dc
                if wrap:
                    rr, cc = rr % rows, cc % cols
                elif not (0 <= rr < rows and 0 <= cc < cols):
                    continue
                if (rr, cc) != (r, c):
                    nbrs.add(idx(rr, cc))
            out.append(sorted(nbrs - {idx(r, c)}))
    return out


def _erdos_renyi_neighbours(n: int, rng: random.Random) -> list[list[int]]:
    p = rng.uniform(0.25, 0.7)
    nbrs: list[set[int]] = [set() for _ in range(n)]
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < p:
                nbrs[a].add(b)
                nbrs[b].add(a)
    return [sorted(s) for s in nbrs]


def _draw_topology(
    rng: random.Random, config: GeneratorConfig
) -> tuple[str, list[list[int]]]:
    kind = rng.choice(list(config.topologies))
    lo, hi = config.min_processes, config.max_processes
    if kind in ("grid", "torus"):
        rows = 2
        cols = rng.randint(max(1, lo // 2), max(2, hi // 2))
        n = rows * cols
        if n < 2:
            rows, cols, n = 2, 1, 2
        nbrs = _grid_neighbours(rows, cols, wrap=kind == "torus")
        return kind, nbrs
    n = rng.randint(lo, hi)
    if kind == "ring":
        return kind, _ring_neighbours(n)
    if kind == "path":
        return kind, _path_neighbours(n)
    return kind, _erdos_renyi_neighbours(n, rng)


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
def _const(rng: random.Random, domain: int) -> IntLit:
    return IntLit(rng.randrange(domain))


def _atom(
    rng: random.Random, readable: Sequence[tuple[str, int]]
) -> Expr:
    """One comparison atom over the readable variables."""
    name, domain = rng.choice(list(readable))
    roll = rng.random()
    if roll < 0.45 or len(readable) == 1:
        op = rng.choice(("==", "!=", "<", ">="))
        return BinOp(op, Name(name), _const(rng, domain))
    other, other_dom = rng.choice(list(readable))
    if other == name:
        return BinOp("==", Name(name), _const(rng, domain))
    if roll < 0.8:
        op = rng.choice(("==", "!=", "<", "<="))
        return BinOp(op, Name(name), Name(other))
    # modular offset relation: x == (y + c) % d
    offset = rng.randrange(1, max(2, domain))
    return BinOp(
        "==",
        Name(name),
        BinOp("%", BinOp("+", Name(other), IntLit(offset)), IntLit(domain)),
    )


def _bool_expr(
    rng: random.Random, readable: Sequence[tuple[str, int]], depth: int
) -> Expr:
    if depth <= 0 or rng.random() < 0.45:
        atom = _atom(rng, readable)
        if rng.random() < 0.15:
            return UnaryOp("!", atom)
        return atom
    op = rng.choice(("&", "|"))
    return BinOp(
        op,
        _bool_expr(rng, readable, depth - 1),
        _bool_expr(rng, readable, depth - 1),
    )


def _value_expr(
    rng: random.Random,
    readable: Sequence[tuple[str, int]],
    target_domain: int,
) -> Expr:
    """An expression whose value always lands inside the target domain."""
    roll = rng.random()
    if roll < 0.4:
        return _const(rng, target_domain)
    name, src_domain = rng.choice(list(readable))
    if roll < 0.6 and src_domain <= target_domain:
        return Name(name)
    offset = rng.randrange(target_domain)
    # (x + c) % d is in [0, d) for any x >= 0
    return BinOp(
        "%",
        BinOp("+", Name(name), IntLit(offset)),
        IntLit(target_domain),
    )


# ----------------------------------------------------------------------
# invariant synthesis
# ----------------------------------------------------------------------
def _universe_expr(var0: str) -> Expr:
    return BinOp(">=", Name(var0), IntLit(0))


def _closed_invariant_expr(
    rng: random.Random,
    protocol: Protocol,
    config: GeneratorConfig,
) -> Expr | None:
    """A closed-by-construction invariant as a minimised DNF expression.

    Closure for free: take the forward-reachable set of a few random seed
    states (any reachable closure is closed by definition), then compress
    its minterms with the two-level minimiser and rebuild a DSL expression.
    Returns ``None`` when the cover is too large to print sensibly.
    """
    space = protocol.space
    n_seeds = rng.randint(1, 3)
    seeds = np.array(
        [rng.randrange(space.size) for _ in range(n_seeds)], dtype=np.int64
    )
    view = TransitionView.of_protocol(protocol)
    mask = forward_reachable(view, np.unique(seeds), space.size)
    states = np.flatnonzero(mask)
    if len(states) == space.size:
        return _universe_expr(space.variables[0].name)
    if len(states) > 4 * config.max_invariant_cubes:
        return None
    minterms = [space.decode(int(s)) for s in states]
    domains = [int(r) for r in space.radices]
    cover = minimize_cover(minterms, domains)
    if not cover or len(cover) > config.max_invariant_cubes:
        return None
    terms: list[Expr] = []
    for cube in cover:
        lits: list[Expr] = []
        for pos, allowed in enumerate(cube):
            if len(allowed) == domains[pos]:
                continue  # don't-care position
            name = space.variables[pos].name
            vals = sorted(allowed)
            if len(vals) == 1:
                lits.append(BinOp("==", Name(name), IntLit(vals[0])))
            elif len(vals) == domains[pos] - 1:
                (missing,) = sorted(set(range(domains[pos])) - allowed)
                lits.append(BinOp("!=", Name(name), IntLit(missing)))
            elif vals == list(range(vals[0], vals[-1] + 1)):
                lits.append(
                    BinOp(
                        "&",
                        BinOp(">=", Name(name), IntLit(vals[0])),
                        BinOp("<=", Name(name), IntLit(vals[-1])),
                    )
                )
            else:
                ors: Expr = BinOp("==", Name(name), IntLit(vals[0]))
                for v in vals[1:]:
                    ors = BinOp("|", ors, BinOp("==", Name(name), IntLit(v)))
                lits.append(ors)
        if not lits:
            return _universe_expr(space.variables[0].name)
        term = lits[0]
        for lit in lits[1:]:
            term = BinOp("&", term, lit)
        terms.append(term)
    expr = terms[0]
    for term in terms[1:]:
        expr = BinOp("|", expr, term)
    return expr


# ----------------------------------------------------------------------
# the generator proper
# ----------------------------------------------------------------------
def _draw_decl(
    rng: random.Random, config: GeneratorConfig, name: str
) -> tuple[ProtocolDecl, str]:
    kind, neighbours = _draw_topology(rng, config)
    n = len(neighbours)

    # domains, capped so the state space stays explicit-checkable
    domains: list[int] = []
    total = 1
    for _ in range(n):
        d = rng.randint(2, config.max_domain)
        while d > 2 and total * d > config.max_states:
            d -= 1
        if total * d > config.max_states:
            d = 2
        domains.append(d)
        total *= d

    use_labels = rng.random() < config.label_prob
    var_decls = tuple(
        VarDecl(
            (f"x{j}",),
            Domain(size=d, labels=_LABELS[:d] if use_labels else None),
        )
        for j, d in enumerate(domains)
    )

    processes: list[ProcessDecl] = []
    for j in range(n):
        reads = {j}
        for nb in neighbours[j]:
            if rng.random() < config.read_keep_prob:
                reads.add(nb)
        read_names = tuple(f"x{i}" for i in sorted(reads))
        readable = [(f"x{i}", domains[i]) for i in sorted(reads)]
        n_actions = rng.randint(1, config.max_actions_per_process)
        actions = []
        for a in range(n_actions):
            guard = _bool_expr(rng, readable, depth=rng.randint(0, 2))
            value = _value_expr(rng, readable, domains[j])
            actions.append(
                ActionDecl(
                    label=f"P{j}.A{a}",
                    guard=guard,
                    assignments=(Assignment(f"x{j}", value),),
                )
            )
        processes.append(
            ProcessDecl(
                name=f"P{j}",
                reads=read_names,
                writes=(f"x{j}",),
                actions=tuple(actions),
            )
        )

    # placeholder invariant; the real one may need the compiled protocol
    return ProtocolDecl(
        name=name,
        variables=var_decls,
        processes=tuple(processes),
        invariant=_universe_expr("x0"),
    ), kind


def generate_instance(
    seed: int, config: GeneratorConfig | None = None
) -> FuzzInstance:
    """Generate one compiled instance, deterministically, from ``seed``."""
    config = config or GeneratorConfig()
    rejects = 0
    for attempt in range(config.max_rejects):
        sub_seed = seed * 1_000_003 + attempt
        rng = random.Random(sub_seed)
        try:
            decl, kind = _draw_decl(rng, config, name=f"fuzz_{seed}")
            protocol, _ = compile_instance(decl)
            # now that transitions exist, pick the invariant
            if rng.random() < config.closed_invariant_prob:
                inv_expr = _closed_invariant_expr(rng, protocol, config)
            else:
                inv_expr = None
            if inv_expr is None:
                readable = [
                    (v.name, v.domain_size)
                    for v in protocol.space.variables
                ]
                inv_expr = _bool_expr(rng, readable, depth=rng.randint(1, 2))
            decl = replace(decl, invariant=inv_expr)
            source = decl_to_source(decl)
            protocol, invariant = compile_instance(source)
            if not invariant.mask.any():
                rejects += 1
                continue  # degenerate empty invariant: reroll
            return FuzzInstance(
                seed=seed,
                decl=decl,
                source=source,
                protocol=protocol,
                invariant=invariant,
                topology=kind,
                rejects=rejects,
            )
        except (CompileError, ActionCompileError, ValueError):
            rejects += 1
            continue
    raise GenerationError(
        f"seed {seed}: no compilable instance within "
        f"{config.max_rejects} attempts"
    )


def instance_from_source(source: str, *, seed: int = -1) -> FuzzInstance:
    """Rebuild an instance from corpus source text (topology unknown)."""
    from ..dsl.parser import parse_protocol

    decl = parse_protocol(source)
    protocol, invariant = compile_instance(decl)
    return FuzzInstance(
        seed=seed,
        decl=decl,
        source=source,
        protocol=protocol,
        invariant=invariant,
        topology="corpus",
    )


def iteration_seeds(master_seed: int, iterations: int) -> list[int]:
    """The per-iteration seed sequence of one fuzz run (pure function)."""
    return [master_seed * 1_000_000_007 + i for i in range(iterations)]
