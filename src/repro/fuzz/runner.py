"""The fuzz campaign driver: generate → oracles → shrink → corpus.

One campaign is a deterministic function of ``(master seed, iteration
count, generator config, oracle selection)``: iteration *i* derives its
own seed via :func:`repro.fuzz.generate.iteration_seeds`, generates one
instance, runs the oracle bank, and — when asked — minimises any failing
instance and persists it to the corpus.  ``--time-budget`` bounds wall
clock for nightly runs; because it makes the iteration count
time-dependent it is the one knob that trades reproducibility for
coverage (documented on the CLI).

Progress is observable through ``fuzz.*`` trace counters (rendered as the
Fuzz table by ``stsyn trace-report``): ``fuzz.iterations``,
``fuzz.generated``, ``fuzz.gen_rejects``, ``fuzz.oracle_runs``,
``fuzz.findings``, ``fuzz.shrink_steps``, ``fuzz.shrink_attempts``,
``fuzz.corpus_entries``, ``fuzz.states_explored``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..trace import current_tracer
from .generate import (
    FuzzInstance,
    GenerationError,
    GeneratorConfig,
    generate_instance,
    iteration_seeds,
)
from .oracles import Finding, OracleContext, resolve_oracles, run_oracles
from .shrink import failure_predicate_for, shrink_instance


@dataclass
class IterationOutcome:
    """One fuzz iteration, fully described."""

    index: int
    seed: int
    instance: str  # FuzzInstance.describe(), "" when generation failed
    n_states: int
    findings: list[Finding] = field(default_factory=list)
    generation_error: str = ""
    shrink_steps: int = 0
    minimized: str = ""  # reduced instance description, when minimised
    corpus_path: str = ""


@dataclass
class FuzzReport:
    """Deterministic campaign summary (no timings, no absolute paths)."""

    master_seed: int
    iterations_requested: int
    oracles: list[str]
    outcomes: list[IterationOutcome] = field(default_factory=list)
    stopped_by_budget: bool = False

    @property
    def iterations_run(self) -> int:
        return len(self.outcomes)

    @property
    def n_findings(self) -> int:
        return sum(len(o.findings) for o in self.outcomes)

    @property
    def failing(self) -> list[IterationOutcome]:
        return [o for o in self.outcomes if o.findings]

    def render(self) -> str:
        """Bit-for-bit reproducible text (the default CLI output)."""
        lines = [
            f"fuzz campaign: seed={self.master_seed} "
            f"iterations={self.iterations_run}/{self.iterations_requested} "
            f"oracles={','.join(self.oracles)}"
        ]
        for o in self.outcomes:
            status = "FAIL" if o.findings else "ok"
            detail = o.instance or f"generation error: {o.generation_error}"
            lines.append(
                f"  [{o.index:>4}] seed={o.seed} {status:<4} {detail}"
            )
            for f in o.findings:
                lines.append(f"         - {f.oracle}: {f.message}")
            if o.minimized:
                lines.append(
                    f"         shrunk in {o.shrink_steps} steps to "
                    f"{o.minimized}"
                )
            if o.corpus_path:
                lines.append(f"         corpus: {o.corpus_path}")
        verdict = "FINDINGS" if self.n_findings else "clean"
        lines.append(
            f"result: {verdict} ({self.n_findings} findings, "
            f"{len(self.failing)} failing instances)"
        )
        if self.stopped_by_budget:
            lines.append("note: stopped by --time-budget (iteration count "
                         "is time-dependent; rerun without it to reproduce)")
        return "\n".join(lines)


def run_fuzz(
    seed: int,
    iterations: int,
    *,
    oracle_names=None,
    generator_config: GeneratorConfig | None = None,
    ctx: OracleContext | None = None,
    minimize: bool = False,
    corpus_dir: Path | str | None = None,
    time_budget: float | None = None,
    max_shrink_attempts: int = 400,
) -> FuzzReport:
    """Run one campaign; see the module docstring for the contract."""
    from .corpus import write_corpus_entry

    tracer = current_tracer()
    config = generator_config or GeneratorConfig()
    ctx = ctx or OracleContext()
    oracles = resolve_oracles(oracle_names)
    report = FuzzReport(
        master_seed=seed,
        iterations_requested=iterations,
        oracles=oracles,
    )
    deadline = (
        time.monotonic() + time_budget if time_budget is not None else None
    )
    for index, iter_seed in enumerate(iteration_seeds(seed, iterations)):
        if deadline is not None and time.monotonic() >= deadline:
            report.stopped_by_budget = True
            break
        tracer.count("fuzz.iterations")
        try:
            instance = generate_instance(iter_seed, config)
        except GenerationError as exc:
            tracer.count("fuzz.gen_rejects")
            report.outcomes.append(
                IterationOutcome(
                    index=index,
                    seed=iter_seed,
                    instance="",
                    n_states=0,
                    generation_error=str(exc),
                )
            )
            continue
        tracer.count("fuzz.generated")
        tracer.count("fuzz.gen_rejects", instance.rejects)
        tracer.count("fuzz.states_explored", instance.protocol.space.size)
        tracer.count("fuzz.oracle_runs", len(oracles))
        findings = run_oracles(instance, oracles, ctx)
        tracer.count("fuzz.findings", len(findings))
        outcome = IterationOutcome(
            index=index,
            seed=iter_seed,
            instance=instance.describe(),
            n_states=instance.protocol.space.size,
            findings=findings,
        )
        if findings and minimize:
            predicate = failure_predicate_for(oracles, findings, ctx)
            shrunk = shrink_instance(
                instance, predicate, max_attempts=max_shrink_attempts
            )
            tracer.count("fuzz.shrink_steps", shrunk.steps)
            tracer.count("fuzz.shrink_attempts", shrunk.attempts)
            outcome.shrink_steps = shrunk.steps
            outcome.minimized = shrunk.instance.describe()
            final_instance = shrunk.instance
            final_findings = run_oracles(final_instance, oracles, ctx)
            if not final_findings:  # paranoid: predicate matched on oracle
                final_instance, final_findings = instance, findings
            if corpus_dir is not None:
                path = write_corpus_entry(
                    corpus_dir,
                    final_instance,
                    final_findings,
                    expect_findings=True,
                    shrink_steps=shrunk.steps,
                    note=f"fuzz master_seed={seed} iteration={index}",
                )
                tracer.count("fuzz.corpus_entries")
                outcome.corpus_path = path.name
        elif findings and corpus_dir is not None:
            path = write_corpus_entry(
                corpus_dir,
                instance,
                findings,
                expect_findings=True,
                note=f"fuzz master_seed={seed} iteration={index}",
            )
            tracer.count("fuzz.corpus_entries")
            outcome.corpus_path = path.name
        report.outcomes.append(outcome)
    return report
