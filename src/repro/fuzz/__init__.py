"""Differential fuzz harness.

The repo's redundancy — two engines, three synthesis paths, a portfolio
runtime, independent certificates — weaponised as a bug-finder:
:mod:`generate` draws seeded random protocols over random topologies as
round-trippable ``.stsyn`` source, :mod:`oracles` cross-checks every
redundant computation pair, :mod:`shrink` minimises failures, and
:mod:`corpus` persists them as committed regression cases.  ``stsyn
fuzz`` is the CLI entry; ``docs/FUZZING.md`` is the guide.
"""

from .corpus import (
    CorpusEntry,
    entry_name,
    load_corpus,
    replay_entry,
    write_corpus_entry,
)
from .generate import (
    TOPOLOGIES,
    FuzzInstance,
    GenerationError,
    GeneratorConfig,
    compile_instance,
    generate_instance,
    instance_from_source,
    iteration_seeds,
)
from .mutants import MUTATIONS, Mutation, make_mutation
from .oracles import (
    DEFAULT_ORACLES,
    ORACLES,
    Finding,
    OracleContext,
    resolve_oracles,
    run_oracles,
)
from .runner import FuzzReport, IterationOutcome, run_fuzz
from .shrink import ShrinkResult, failure_predicate_for, shrink_instance

__all__ = [
    "DEFAULT_ORACLES",
    "MUTATIONS",
    "ORACLES",
    "TOPOLOGIES",
    "CorpusEntry",
    "Finding",
    "FuzzInstance",
    "FuzzReport",
    "GenerationError",
    "GeneratorConfig",
    "IterationOutcome",
    "Mutation",
    "OracleContext",
    "ShrinkResult",
    "compile_instance",
    "entry_name",
    "failure_predicate_for",
    "generate_instance",
    "instance_from_source",
    "iteration_seeds",
    "load_corpus",
    "make_mutation",
    "replay_entry",
    "resolve_oracles",
    "run_fuzz",
    "run_oracles",
    "shrink_instance",
    "write_corpus_entry",
]
