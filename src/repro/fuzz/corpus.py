"""The committed regression corpus under ``tests/corpus/``.

Every minimised failing instance the fuzzer (or a hypothesis suite)
discovers is persisted as a pair of files:

``<name>.stsyn``
    the reduced protocol, as plain DSL source — the portable, diffable,
    human-readable artifact;
``<name>.json``
    metadata: the generator seed, the oracles that fired, their finding
    messages at capture time, and the shrink statistics.

``tests/test_corpus_replay.py`` replays every entry through the oracle
bank on each pytest run, so a once-found bug stays found.  Entries whose
findings have been *fixed* still replay — replay asserts the instance
compiles and the oracles run clean (or, for entries marked
``expect_findings``, that they still fire), making the corpus double as a
known-answer suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .generate import FuzzInstance, instance_from_source
from .oracles import Finding

CORPUS_SCHEMA = 1


@dataclass
class CorpusEntry:
    """One committed regression case."""

    name: str
    seed: int
    source: str
    oracles: list[str] = field(default_factory=list)
    messages: list[str] = field(default_factory=list)
    #: True while the underlying bug is open: replay asserts findings fire
    expect_findings: bool = False
    shrink_steps: int = 0
    note: str = ""

    def instance(self) -> FuzzInstance:
        return instance_from_source(self.source, seed=self.seed)


def entry_name(seed: int, oracles) -> str:
    tag = "-".join(sorted(set(oracles))) or "clean"
    return f"seed{seed}_{tag}"


def write_corpus_entry(
    corpus_dir: Path | str,
    instance: FuzzInstance,
    findings: list[Finding],
    *,
    expect_findings: bool = False,
    shrink_steps: int = 0,
    note: str = "",
) -> Path:
    """Persist one case; returns the path of the ``.json`` metadata file."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    oracles = sorted({f.oracle for f in findings})
    name = entry_name(instance.seed, oracles)
    (corpus_dir / f"{name}.stsyn").write_text(instance.source)
    meta = {
        "schema": CORPUS_SCHEMA,
        "name": name,
        "seed": instance.seed,
        "oracles": oracles,
        "messages": sorted(f.message for f in findings),
        "expect_findings": expect_findings,
        "shrink_steps": shrink_steps,
        "note": note,
    }
    path = corpus_dir / f"{name}.json"
    path.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: Path | str) -> list[CorpusEntry]:
    """All committed entries, sorted by name (deterministic replay order)."""
    corpus_dir = Path(corpus_dir)
    entries = []
    if not corpus_dir.is_dir():
        return entries
    for meta_path in sorted(corpus_dir.glob("*.json")):
        meta = json.loads(meta_path.read_text())
        source_path = meta_path.with_suffix(".stsyn")
        entries.append(
            CorpusEntry(
                name=meta["name"],
                seed=int(meta.get("seed", -1)),
                source=source_path.read_text(),
                oracles=list(meta.get("oracles", [])),
                messages=list(meta.get("messages", [])),
                expect_findings=bool(meta.get("expect_findings", False)),
                shrink_steps=int(meta.get("shrink_steps", 0)),
                note=str(meta.get("note", "")),
            )
        )
    return entries


def replay_entry(entry: CorpusEntry, oracle_names=None, ctx=None):
    """Re-run the oracle bank on one corpus entry; returns the findings."""
    from .oracles import DEFAULT_ORACLES, OracleContext, run_oracles

    instance = entry.instance()
    names = list(oracle_names or entry.oracles or DEFAULT_ORACLES)
    return run_oracles(instance, names, ctx or OracleContext())
