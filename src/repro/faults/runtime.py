"""Deterministic runtime fault injection for the portfolio engine.

Distinct from the *protocol-level* transient-fault machinery in
:mod:`repro.faults.injection` (which perturbs protocol state to measure
convergence): this module injects *infrastructure* failures — worker
crashes, hangs, cache corruption, lost trace files — at named hook points,
so every failure mode the fault-tolerant portfolio runtime guards against
is reproducible in tests and CI instead of only observable in production.

A :class:`FaultPlan` is a small, picklable record of what to break and
where.  Hook points call :func:`fault_point` (worker start, heuristic pass
boundaries) or the ``should_*`` predicates (cache writes, trace merging);
with no plan installed every hook is a cheap no-op.

Targets are matched with ``"<site>@<substring>"`` specs: the part before
``@`` names the hook site (``worker.start``, ``pass.1`` ...), the part
after it is a substring of the worker's config description (for cache and
trace faults: the config description / trace file name).  A bare spec with
no ``@`` matches any site.  Worker faults fire only while the job's attempt
number is below ``max_fires`` — so a crash-on-first-attempt plan lets the
retry succeed, deterministically.

Environment knob: ``REPRO_FAULT_PLAN`` holds a JSON object of
:class:`FaultPlan` fields; :func:`repro.parallel.synthesize_parallel`
auto-loads it, so CI can run fault drills without touching code.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass

#: environment variable holding a JSON-encoded :class:`FaultPlan`
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultPlan:
    """What to break, where, and how often (all fields optional)."""

    #: ``"<site>@<config substring>"`` — ``os._exit`` the worker there
    crash_worker_at: str | None = None
    #: ``"<site>@<config substring>"`` — sleep ``hang_seconds`` there,
    #: ignoring every cancellation token (only the watchdog can stop it)
    hang_worker_at: str | None = None
    #: config-description substring — truncate the cache entry just written
    corrupt_cache_entry: str | None = None
    #: ``"<site>@<substring>"`` — tamper a convergence certificate at
    #: ``cert.store`` (cache record, matched on the config description) or
    #: ``cert.write`` (file save, matched on the file name); the drill that
    #: proves downstream consumers reject a corrupted witness
    corrupt_certificate: str | None = None
    #: trace-file-name substring — delete the file before traces merge
    drop_trace_file: str | None = None
    #: exit code for :attr:`crash_worker_at` (1 ≈ segfault/OOM-kill victim)
    crash_exit_code: int = 1
    hang_seconds: float = 3600.0
    #: worker faults fire only while ``attempt < max_fires``
    max_fires: int = 1

    # -- network knobs (TCP transport; see repro.parallel.transport) -----
    #: ``"<frame kind>@<config substring>"`` — silently discard matching
    #: outbound frames (``heartbeat``, ``result``, ``job``); one lost frame,
    #: exactly what a flaky switch does
    drop_frame: str | None = None
    #: ``"<frame kind>@<config substring>"`` — sleep ``delay_frame_seconds``
    #: before sending the matching frame (congestion / slow link)
    delay_frame: str | None = None
    delay_frame_seconds: float = 0.5
    #: config-description substring — send the worker's result frame twice
    #: (retransmission after a lost ACK); the coordinator must dedupe
    duplicate_result: str | None = None
    #: ``"<frame kind>@<config substring>"`` — on the first matching send,
    #: black-hole *every* outbound frame for ``partition_seconds`` (a network
    #: partition: the worker keeps computing, the coordinator sees silence,
    #: the lease expires, and the late result arrives after the heal)
    partition: str | None = None
    partition_seconds: float = 2.0
    #: config-description substring — suppress heartbeats and delay the
    #: result by ``stale_lease_seconds``, so it lands after the lease
    #: expired and exercises the duplicate/stale-result acceptance path
    stale_lease: str | None = None
    stale_lease_seconds: float = 2.0

    # -- service knobs (stsyn serve; see repro.service) ------------------
    #: ``"job.submit@<job description substring>"`` — refuse the matching
    #: submission with 503 at admission (an overloaded or degraded
    #: control plane); clients must see a clean error, not a hang
    reject_job: str | None = None
    #: ``"job.admit@<job description substring>"`` — sleep
    #: ``slow_admit_seconds`` between admission and dispatch (a saturated
    #: orchestrator); status must report "queued" throughout
    slow_admit: str | None = None
    slow_admit_seconds: float = 0.5
    #: ``"trace.stream@<job description substring>"`` — sever the matching
    #: trace stream mid-flight (a proxy timeout / dropped client); the job
    #: itself must be unaffected and the stream re-attachable
    drop_stream: str | None = None

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """Parse :data:`FAULT_PLAN_ENV` (None when unset/empty)."""
        raw = (os.environ if environ is None else environ).get(FAULT_PLAN_ENV)
        if not raw:
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{FAULT_PLAN_ENV} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{FAULT_PLAN_ENV} must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"{FAULT_PLAN_ENV} has unknown keys: {unknown}")
        return cls(**payload)

    def to_env(self) -> str:
        """JSON string for :data:`FAULT_PLAN_ENV` (round-trips ``from_env``)."""
        return json.dumps(dataclasses.asdict(self))


# ----------------------------------------------------------------------
# per-process active plan + worker context
# ----------------------------------------------------------------------

_PLAN: FaultPlan | None = None
_CONTEXT: dict = {"config": "", "attempt": 0}


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Activate ``plan`` for this process (None deactivates)."""
    global _PLAN
    _PLAN = plan


def active_fault_plan() -> FaultPlan | None:
    return _PLAN


def set_fault_context(config: str, attempt: int) -> None:
    """Tell the hooks which job this process is currently running."""
    _CONTEXT["config"] = config
    _CONTEXT["attempt"] = int(attempt)


def _spec_matches(spec: str | None, site: str, needle: str) -> bool:
    if not spec or not needle:
        return False
    pattern = spec
    if "@" in spec:
        want_site, _, pattern = spec.partition("@")
        if want_site and want_site != site:
            return False
    return pattern in needle


def fault_point(site: str, **info) -> None:
    """Worker-side hook: crash or hang here if the active plan says so.

    Called at worker start and heuristic pass boundaries.  A crash is an
    ``os._exit`` — no cleanup, no excepthook, exactly what an OOM kill looks
    like from the parent.  A hang is a plain sleep that ignores every
    cancellation token, so only the parent watchdog can reclaim the worker.
    """
    plan = _PLAN
    if plan is None or _CONTEXT["attempt"] >= plan.max_fires:
        return
    config = _CONTEXT["config"]
    if _spec_matches(plan.crash_worker_at, site, config):
        os._exit(plan.crash_exit_code)
    if _spec_matches(plan.hang_worker_at, site, config):
        deadline = time.monotonic() + plan.hang_seconds
        while time.monotonic() < deadline:
            time.sleep(0.05)


def should_corrupt_cache(config_description: str) -> bool:
    """Parent-side hook: corrupt the cache entry just written for this config?"""
    plan = _PLAN
    return plan is not None and _spec_matches(
        plan.corrupt_cache_entry, "cache.put", config_description
    )


def should_corrupt_cert(site: str, needle: str) -> bool:
    """Parent-side hook: tamper the certificate being stored/written here?

    ``site`` is ``"cert.store"`` (certificate embedded in a cache record)
    or ``"cert.write"`` (certificate saved to its own file); ``needle`` is
    the config description / file name the spec is matched against.
    """
    plan = _PLAN
    return plan is not None and _spec_matches(
        plan.corrupt_certificate, site, needle
    )


def should_reject_job(job_description: str) -> bool:
    """Service-side hook: refuse this submission at admission (503)?

    Matched at site ``job.submit`` against the job's description
    (``"<tenant>/<protocol>"``).  Unlike the worker knobs this is not
    attempt-gated — the service retries nothing; the *client* decides.
    """
    plan = _PLAN
    return plan is not None and _spec_matches(
        plan.reject_job, "job.submit", job_description
    )


def admit_delay(job_description: str) -> float:
    """Service-side hook: seconds to hold this job between admission and
    dispatch (site ``job.admit``) — the slow-admit drill."""
    plan = _PLAN
    if plan is not None and _spec_matches(
        plan.slow_admit, "job.admit", job_description
    ):
        return plan.slow_admit_seconds
    return 0.0


def should_drop_stream(job_description: str) -> bool:
    """Service-side hook: sever this trace stream mid-flight (site
    ``trace.stream``)?  Fires once per armed plan via ``max_fires``-free
    matching — the stream endpoint counts ``service.stream_drops`` and the
    client simply reconnects."""
    plan = _PLAN
    return plan is not None and _spec_matches(
        plan.drop_stream, "trace.stream", job_description
    )


def should_drop_trace(filename: str) -> bool:
    """Parent-side hook: delete this worker trace before merging?"""
    plan = _PLAN
    return plan is not None and _spec_matches(
        plan.drop_trace_file, "trace.merge", filename
    )


# ----------------------------------------------------------------------
# network faults (worker-side hooks of repro.parallel.transport)
# ----------------------------------------------------------------------

#: monotonic instant until which this process drops every outbound frame
_PARTITION_UNTIL: float = 0.0


def _worker_fault_armed(plan: FaultPlan | None) -> bool:
    return plan is not None and _CONTEXT["attempt"] < plan.max_fires


def partition_active() -> bool:
    """Is this process currently inside an injected network partition?"""
    return time.monotonic() < _PARTITION_UNTIL


def heal_partition() -> None:
    """End any injected partition now.

    A real worker process dies with its partition, but in-process
    :class:`~repro.parallel.transport.WorkerServer` threads (tests, the
    chaos drill) share this module's state across drills — each one must
    heal the network before the next begins.
    """
    global _PARTITION_UNTIL
    _PARTITION_UNTIL = 0.0


def maybe_start_partition(frame_kind: str) -> None:
    """Worker-side hook: begin a partition if the plan targets this frame.

    Matched like every other knob — ``"<frame kind>@<config substring>"``
    against the job this process is running.  Once fired, *all* outbound
    frames (heartbeats and results alike) are dropped for
    ``partition_seconds``; the coordinator sees the same silence a real
    partition produces and must recover via the lease protocol.
    """
    global _PARTITION_UNTIL
    plan = _PLAN
    if not _worker_fault_armed(plan) or partition_active():
        return
    if _spec_matches(plan.partition, frame_kind, _CONTEXT["config"]):
        _PARTITION_UNTIL = time.monotonic() + plan.partition_seconds


def should_drop_frame(frame_kind: str) -> bool:
    """Worker-side hook: discard this outbound frame?  Covers both the
    one-shot ``drop_frame`` knob and an active injected partition."""
    maybe_start_partition(frame_kind)
    if partition_active():
        return True
    plan = _PLAN
    return _worker_fault_armed(plan) and _spec_matches(
        plan.drop_frame, frame_kind, _CONTEXT["config"]
    )


def frame_delay(frame_kind: str) -> float:
    """Worker-side hook: seconds to sleep before sending this frame."""
    plan = _PLAN
    if _worker_fault_armed(plan) and _spec_matches(
        plan.delay_frame, frame_kind, _CONTEXT["config"]
    ):
        return plan.delay_frame_seconds
    return 0.0


def should_duplicate_result() -> bool:
    """Worker-side hook: send the result frame twice (lost-ACK retransmit)?"""
    plan = _PLAN
    return _worker_fault_armed(plan) and _spec_matches(
        plan.duplicate_result, "result", _CONTEXT["config"]
    )


def stale_lease_delay() -> float:
    """Worker-side hook: seconds to silently sit on the finished result
    (heartbeats suppressed) so it arrives after the lease expired."""
    plan = _PLAN
    if _worker_fault_armed(plan) and _spec_matches(
        plan.stale_lease, "result", _CONTEXT["config"]
    ):
        return plan.stale_lease_seconds
    return 0.0
