"""Execution simulator: run protocols under daemons, inject faults, measure
empirical convergence.

The paper's correctness claims are verified exactly by :mod:`repro.verify`;
the simulator complements them with *observable* behaviour — recovery-time
distributions, token traces, before/after fault demonstrations — used by the
examples and as a statistical cross-check in the test suite (a strongly
stabilizing protocol must converge on every simulated run).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..protocol.predicate import Predicate
from ..protocol.protocol import Protocol
from .daemons import Daemon, RandomDaemon
from .injection import FaultModel, random_state


@dataclass
class Trace:
    """One simulated execution."""

    states: list[int]
    processes: list[int]  # acting process per step (len == len(states) - 1)
    converged: bool
    steps_to_converge: int | None

    def __len__(self) -> int:
        return len(self.states)


def run(
    protocol: Protocol,
    start: int,
    *,
    invariant: Predicate | None = None,
    daemon: Daemon | None = None,
    max_steps: int = 10_000,
    stop_on_convergence: bool = True,
) -> Trace:
    """Execute from ``start`` until convergence, deadlock or ``max_steps``.

    Convergence means *reaching* the invariant; with
    ``stop_on_convergence=False`` the run continues inside it (useful for
    observing closure, e.g. the circulating token).
    """
    daemon = daemon if daemon is not None else RandomDaemon()
    states = [start]
    processes: list[int] = []
    converged = invariant is not None and start in invariant
    steps_to_converge = 0 if converged else None
    state = start
    for step in range(max_steps):
        if converged and stop_on_convergence:
            break
        enabled = protocol.enabled_groups(state)
        if not enabled:
            break
        gid = daemon.choose(protocol, state, enabled)
        j, rcode, wcode = gid
        state = int(state + protocol.tables[j].deltas[rcode, wcode])
        states.append(state)
        processes.append(j)
        if not converged and invariant is not None and state in invariant:
            converged = True
            steps_to_converge = step + 1
    return Trace(
        states=states,
        processes=processes,
        converged=converged,
        steps_to_converge=steps_to_converge,
    )


@dataclass
class ConvergenceStats:
    """Aggregate of many fault-recovery runs."""

    runs: int
    converged: int
    steps: list[int] = field(default_factory=list)

    @property
    def convergence_rate(self) -> float:
        return self.converged / self.runs if self.runs else 0.0

    @property
    def mean_steps(self) -> float:
        return sum(self.steps) / len(self.steps) if self.steps else 0.0

    @property
    def max_steps(self) -> int:
        return max(self.steps) if self.steps else 0

    def summary(self) -> str:
        return (
            f"{self.converged}/{self.runs} runs converged "
            f"(mean {self.mean_steps:.1f} steps, worst {self.max_steps})"
        )


def measure_convergence(
    protocol: Protocol,
    invariant: Predicate,
    *,
    runs: int = 100,
    seed: int = 0,
    daemon_factory: Callable[[int], Daemon] | None = None,
    max_steps: int = 10_000,
) -> ConvergenceStats:
    """Drop the protocol into ``runs`` random states and let it recover."""
    rng = random.Random(seed)
    stats = ConvergenceStats(runs=runs, converged=0)
    for r in range(runs):
        start = random_state(protocol.space, rng)
        daemon = (
            daemon_factory(r) if daemon_factory is not None else RandomDaemon(seed=r)
        )
        trace = run(
            protocol,
            start,
            invariant=invariant,
            daemon=daemon,
            max_steps=max_steps,
        )
        if trace.converged:
            stats.converged += 1
            stats.steps.append(trace.steps_to_converge or 0)
    return stats


def run_with_faults(
    protocol: Protocol,
    invariant: Predicate,
    *,
    fault_model: FaultModel | None = None,
    n_faults: int = 3,
    steps_between_faults: int = 200,
    seed: int = 0,
    daemon: Daemon | None = None,
) -> list[Trace]:
    """Alternate fault bursts and recovery phases; one trace per phase.

    Starts inside the invariant, corrupts the state, lets the protocol
    recover, repeats — the full closure-and-convergence story of a
    self-stabilizing protocol in one experiment.
    """
    fault_model = fault_model or FaultModel()
    rng = random.Random(seed)
    daemon = daemon if daemon is not None else RandomDaemon(seed)
    state = invariant.sample()
    traces: list[Trace] = []
    for _ in range(n_faults):
        state = fault_model.corrupt(protocol.space, state, rng)
        trace = run(
            protocol,
            state,
            invariant=invariant,
            daemon=daemon,
            max_steps=steps_between_faults,
        )
        traces.append(trace)
        state = trace.states[-1]
    return traces
