"""Transient faults, daemons, the execution simulator — and runtime fault
injection for the portfolio engine (:mod:`repro.faults.runtime`)."""

from .daemons import (
    AdversarialDaemon,
    Daemon,
    RandomDaemon,
    RoundRobinDaemon,
    daemon_portfolio,
)
from .injection import FaultModel, random_state, random_states
from .runtime import (
    FAULT_PLAN_ENV,
    FaultPlan,
    active_fault_plan,
    fault_point,
    install_fault_plan,
    set_fault_context,
    should_corrupt_cert,
)
from .simulator import (
    ConvergenceStats,
    Trace,
    measure_convergence,
    run,
    run_with_faults,
)

__all__ = [
    "AdversarialDaemon",
    "ConvergenceStats",
    "Daemon",
    "FAULT_PLAN_ENV",
    "FaultModel",
    "FaultPlan",
    "RandomDaemon",
    "RoundRobinDaemon",
    "Trace",
    "active_fault_plan",
    "daemon_portfolio",
    "fault_point",
    "install_fault_plan",
    "measure_convergence",
    "random_state",
    "random_states",
    "run",
    "run_with_faults",
    "set_fault_context",
    "should_corrupt_cert",
]
