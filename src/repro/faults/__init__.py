"""Transient faults, daemons and the execution simulator."""

from .daemons import AdversarialDaemon, Daemon, RandomDaemon, RoundRobinDaemon
from .injection import FaultModel, random_state, random_states
from .simulator import (
    ConvergenceStats,
    Trace,
    measure_convergence,
    run,
    run_with_faults,
)

__all__ = [
    "AdversarialDaemon",
    "ConvergenceStats",
    "Daemon",
    "FaultModel",
    "RandomDaemon",
    "RoundRobinDaemon",
    "Trace",
    "measure_convergence",
    "random_state",
    "random_states",
    "run",
    "run_with_faults",
]
