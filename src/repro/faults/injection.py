"""Transient-fault injection.

Transient faults (the paper's motivation: soft errors, loss of coordination,
bad initialisation) perturb variables to arbitrary values but stop occurring
— modelled as state corruption events applied to a running protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from ..protocol.state_space import StateSpace


@dataclass(frozen=True)
class FaultModel:
    """How a transient fault corrupts a state.

    ``max_vars`` variables (chosen uniformly) are set to uniformly random
    values from their domains.  ``max_vars=None`` corrupts every variable —
    a fully arbitrary restart, the adversary self-stabilization defends
    against.
    """

    max_vars: int | None = None

    def corrupt(self, space: StateSpace, state: int, rng: random.Random) -> int:
        values = list(space.decode(state))
        n = space.n_vars
        count = n if self.max_vars is None else min(self.max_vars, n)
        victims = rng.sample(range(n), count)
        for v in victims:
            values[v] = rng.randrange(space.variables[v].domain_size)
        return space.encode(values)


def random_state(space: StateSpace, rng: random.Random) -> int:
    """A uniformly random state (what an arbitrary transient burst leaves)."""
    values = [
        rng.randrange(v.domain_size) for v in space.variables
    ]
    return space.encode(values)


def random_states(
    space: StateSpace, count: int, *, seed: int = 0
) -> list[int]:
    rng = random.Random(seed)
    return [random_state(space, rng) for _ in range(count)]
