"""Execution daemons (schedulers).

A computation of a protocol is an interleaving of enabled actions
(Section II).  Who gets to move is decided by a *daemon*; the classic
self-stabilization literature distinguishes the central daemon (one enabled
process fires per step — the model this paper uses), randomized daemons and
round-robin-style fair daemons.  These drive the simulator and the empirical
convergence experiments.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from ..protocol.groups import GroupId
from ..protocol.protocol import Protocol


class Daemon(ABC):
    """Chooses which enabled transition fires at each step."""

    @abstractmethod
    def choose(self, protocol: Protocol, state: int, enabled: list[GroupId]) -> GroupId:
        """Pick one of the enabled groups (``enabled`` is non-empty)."""

    def reset(self) -> None:  # pragma: no cover - default no-op
        """Forget scheduling state before a fresh run."""


class RandomDaemon(Daemon):
    """Uniformly random central daemon (deterministic per seed)."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(self, protocol, state, enabled):
        return self._rng.choice(enabled)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class RoundRobinDaemon(Daemon):
    """Cycles through processes; a process fires only when enabled.

    Within a process, ties between several enabled groups are broken by the
    lowest ``(rcode, wcode)`` — deterministic, which makes executions
    replayable (the Gouda–Acharya cycle replay uses exactly this shape).
    """

    def __init__(self, order: Sequence[int] | None = None):
        self._order = list(order) if order is not None else None
        self._pos = 0

    def choose(self, protocol, state, enabled):
        order = self._order if self._order is not None else list(
            range(protocol.n_processes)
        )
        by_proc: dict[int, list[GroupId]] = {}
        for gid in enabled:
            by_proc.setdefault(gid[0], []).append(gid)
        for _ in range(len(order)):
            proc = order[self._pos % len(order)]
            self._pos += 1
            if proc in by_proc:
                return min(by_proc[proc])
        # no process in the order is enabled (cannot happen: enabled != [])
        return min(enabled)

    def reset(self) -> None:
        self._pos = 0


class AdversarialDaemon(Daemon):
    """Prefers moves that stay *outside* the invariant — a worst-case daemon
    for probing convergence (it seeks non-progress behaviour)."""

    def __init__(self, invariant_mask, seed: int = 0):
        self._mask = invariant_mask
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(self, protocol, state, enabled):
        bad = []
        for gid in enabled:
            j, rcode, wcode = gid
            target = int(state + protocol.tables[j].deltas[rcode, wcode])
            if not self._mask[target]:
                bad.append(gid)
        pool = bad if bad else enabled
        return self._rng.choice(pool)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


def daemon_portfolio(
    invariant_mask, seed: int = 0
) -> list[tuple[str, Daemon]]:
    """The standard daemon battery, as ``(name, daemon)`` pairs.

    One representative of each scheduling class: uniformly random,
    round-robin fair, and the adversarial worst case.  The fuzz harness
    runs every synthesized strong winner under all three — strong
    convergence promises convergence under *any* central daemon, so each
    member is an independent oracle schedule.
    """
    return [
        ("random", RandomDaemon(seed=seed)),
        ("round_robin", RoundRobinDaemon()),
        ("adversarial", AdversarialDaemon(invariant_mask, seed=seed)),
    ]
