"""Service counters and the ``/metrics`` report.

:class:`ServiceMetrics` is a thread-safe counter bag — HTTP handlers run
on the asyncio loop while synthesis races complete in executor threads,
and both sides increment.  The ``/metrics`` endpoint renders the counters
two ways:

* ``?format=json`` — the raw counter dict plus job-state census, which is
  what CI asserts against (``service.cache_hits == 1`` after a warm
  resubmission);
* default — the human tables of ``stsyn trace-report``: the service
  counters are folded into a :class:`~repro.trace.report.TraceSummary`
  together with every finished job's merged trace, so one ``curl`` shows
  the Service table *and* the portfolio/transport/certificate tables of
  the work the service actually ran.
"""

from __future__ import annotations

import threading
import time


class ServiceMetrics:
    """Monotonic counters for one ``stsyn serve`` process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self.started = time.time()

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    # ------------------------------------------------------------------
    def render(self, trace_paths=()) -> str:
        """Human report: service counters + the traces of completed jobs."""
        from ..trace.report import render_report, summarize

        summary = summarize(list(trace_paths))
        for name, value in self.snapshot().items():
            summary.counters[name] = summary.counters.get(name, 0) + value
        return render_report(summary)
