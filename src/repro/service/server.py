"""``stsyn serve``: the HTTP face of the synthesis service.

Routing only — the wire mechanics live in :mod:`repro.service.http`, the
job lifecycle in :mod:`repro.service.orchestrator`.  The API:

==========  =============================  =======================================
method      path                           meaning
==========  =============================  =======================================
``POST``    ``/jobs``                      submit (``.stsyn`` source or builtin
                                           protocol + schedule/options) → 202
``GET``     ``/jobs/<id>``                 status JSON
``GET``     ``/jobs/<id>/trace``           live stream of the job's JSONL trace
                                           (SSE with ``Accept: text/event-stream``,
                                           NDJSON otherwise); ends when the job
                                           reaches a terminal state
``GET``     ``/jobs/<id>/certificate``     the winner's convergence certificate
``GET``     ``/jobs/<id>/solution``        the winning PSS groups
``DELETE``  ``/jobs/<id>``                 cooperative cancel
``GET``     ``/healthz``                   liveness + queue census
``GET``     ``/metrics``                   service counters (+ portfolio/transport
                                           tables); ``?format=json`` for machines
==========  =============================  =======================================

Every connection serves one request (``Connection: close``); malformed or
oversized requests get a JSON 4xx, never a traceback.  The
``drop_stream`` fault knob severs a trace stream mid-flight *without* the
terminating chunk — clients observe a truncated chunked body, which is
exactly what a crashed service looks like, and ``service.stream_drops``
counts it.

:class:`ServiceHandle` embeds the whole service in a background thread —
the test suite's harness, and handy for notebooks.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Sequence

from ..faults import runtime as fault_runtime
from .http import (
    ChunkedStream,
    HttpError,
    Request,
    read_request,
    send_error,
    send_json,
    send_response,
)
from .jobs import InvalidJob, Job
from .metrics import ServiceMetrics
from .orchestrator import Orchestrator, ServiceRejected

#: default port for ``stsyn serve`` (workers default to 9178)
DEFAULT_SERVICE_PORT = 9180

#: trace-stream poll cadence (the tracer line-flushes, so new bytes appear
#: promptly; this bounds added latency, not correctness)
STREAM_POLL_INTERVAL = 0.1


class Service:
    """One ``stsyn serve`` instance: asyncio server + orchestrator."""

    def __init__(
        self,
        data_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_SERVICE_PORT,
        max_concurrent: int = 2,
        max_queued: int = 64,
        n_workers: int | None = None,
        worker_endpoints: Sequence[str] | None = None,
        lease_timeout: float = 10.0,
        soft_deadline: float | None = None,
        log=None,
    ):
        self.host = host
        self.port = port
        self.log = log if log is not None else (lambda _msg: None)
        self.metrics = ServiceMetrics()
        self.orchestrator = Orchestrator(
            data_dir,
            max_concurrent=max_concurrent,
            max_queued=max_queued,
            n_workers=n_workers,
            worker_endpoints=list(worker_endpoints or []),
            lease_timeout=lease_timeout,
            soft_deadline=soft_deadline,
            metrics=self.metrics,
        )
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.orchestrator.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.log(f"stsyn serve: listening on {self.host}:{self.port}")

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.orchestrator.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await send_error(writer, exc.status, exc.message)
                return
            except asyncio.TimeoutError:
                await send_error(writer, 408, "timed out reading the request")
                return
            if request is None:
                return
            try:
                await self._route(request, writer)
            except HttpError as exc:
                await send_error(writer, exc.status, exc.message)
            except ServiceRejected as exc:
                await send_error(writer, exc.status, exc.message)
            except InvalidJob as exc:
                await send_error(writer, 400, str(exc))
            except (ConnectionResetError, BrokenPipeError):
                raise
            except Exception as exc:
                self.log(f"stsyn serve: internal error: {exc!r}")
                await send_error(writer, 500, f"internal error: {type(exc).__name__}")
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, request: Request, writer) -> None:
        parts = [p for p in request.path.split("/") if p]
        method = request.method

        if request.path == "/healthz" and method == "GET":
            await send_json(
                writer,
                200,
                {
                    "ok": True,
                    "jobs": self.orchestrator.registry.counts(),
                    "queued": len(self.orchestrator.queue),
                    "workers": list(self.orchestrator.worker_endpoints) or "local",
                },
            )
            return

        if request.path == "/metrics" and method == "GET":
            if request.query.get("format") == "json":
                await send_json(
                    writer,
                    200,
                    {
                        "counters": self.metrics.snapshot(),
                        "jobs": self.orchestrator.registry.counts(),
                        "queued": len(self.orchestrator.queue),
                    },
                )
            else:
                report = self.metrics.render(self.orchestrator.trace_paths())
                await send_response(
                    writer,
                    200,
                    report.encode(),
                    content_type="text/plain; charset=utf-8",
                )
            return

        if parts and parts[0] == "jobs":
            if len(parts) == 1:
                if method == "POST":
                    job = await self.orchestrator.submit(request.json())
                    await send_json(writer, 202, job.to_payload())
                elif method == "GET":
                    await send_json(
                        writer,
                        200,
                        {"jobs": [j.to_payload() for j in
                                  self.orchestrator.registry.all()]},
                    )
                else:
                    raise HttpError(405, f"{method} not allowed on /jobs")
                return
            job = self.orchestrator.registry.get(parts[1])
            if job is None:
                raise HttpError(404, f"no such job: {parts[1]}")
            if len(parts) == 2:
                if method == "GET":
                    await send_json(writer, 200, job.to_payload())
                elif method == "DELETE":
                    if job.terminal:
                        raise HttpError(
                            409, f"job already terminal ({job.state})"
                        )
                    self.orchestrator.cancel(job)
                    await send_json(
                        writer, 202, {"id": job.id, "cancelling": True}
                    )
                else:
                    raise HttpError(405, f"{method} not allowed on a job")
                return
            if method != "GET":
                raise HttpError(405, f"{method} not allowed here")
            if parts[2] == "trace":
                await self._stream_trace(job, request, writer)
                return
            if parts[2] in ("certificate", "solution"):
                await self._send_artifact(job, parts[2], writer)
                return
            raise HttpError(404, f"unknown job resource: {parts[2]}")

        raise HttpError(404, f"no route for {method} {request.path}")

    # ------------------------------------------------------------------
    async def _send_artifact(self, job: Job, which: str, writer) -> None:
        path = (
            job.certificate_path if which == "certificate"
            else job.solution_path
        )
        try:
            with open(path, "rb") as handle:
                body = handle.read()
        except FileNotFoundError:
            if not job.terminal:
                raise HttpError(
                    409,
                    f"job is {job.state}; the {which} is not available yet",
                )
            raise HttpError(
                404,
                f"job {job.id} finished ({job.state}, success={job.success}) "
                f"without a {which}",
            )
        await send_response(writer, 200, body)

    async def _stream_trace(self, job: Job, request: Request, writer) -> None:
        """Tail the job's line-flushed JSONL trace over a chunked response.

        The stream replays the trace from the beginning, then follows new
        lines until the job reaches a terminal state (or the client gives
        up).  :class:`~repro.trace.tail.TailBuffer` guards the torn last
        line the tracer may be mid-writing.
        """
        from ..trace.tail import TailBuffer

        self.metrics.inc("service.trace_streams")
        stream = ChunkedStream(
            writer, sse=request.accepts("text/event-stream")
        )
        await stream.start()
        buffer = TailBuffer()
        description = job.spec.describe()
        position = 0
        sent = 0
        try:
            while True:
                data = b""
                try:
                    with open(job.trace_path, "rb") as handle:
                        handle.seek(position)
                        data = handle.read()
                        position = handle.tell()
                except FileNotFoundError:
                    pass
                for line in buffer.feed(data):
                    await stream.send(line)
                    sent += 1
                    if sent == 1 and fault_runtime.should_drop_stream(
                        description
                    ):
                        # drill: sever without the terminating chunk — the
                        # client sees a truncated chunked body
                        self.metrics.inc("service.stream_drops")
                        return
                if job.terminal:
                    tail = buffer.flush()
                    if tail:
                        await stream.send(tail)
                    # one final re-read: the terminal event may have landed
                    # between our read and the state change
                    with open(job.trace_path, "rb") as handle:
                        handle.seek(position)
                        remainder = handle.read()
                    for line in TailBuffer().feed(remainder):
                        await stream.send(line)
                    break
                await asyncio.sleep(STREAM_POLL_INTERVAL)
            await stream.close()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client disconnected mid-stream


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def run_service(
    data_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_SERVICE_PORT,
    log=print,
    **kwargs,
) -> None:
    """Blocking CLI entry point: serve until SIGINT/SIGTERM, then drain."""
    import signal

    async def _main() -> None:
        service = Service(data_dir, host=host, port=port, log=log, **kwargs)
        await service.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):
                pass  # non-main thread or platform without signal support
        serve_task = asyncio.ensure_future(service.serve_forever())
        await stop.wait()
        log("stsyn serve: shutting down (draining jobs)")
        serve_task.cancel()
        try:
            await serve_task
        except asyncio.CancelledError:
            pass
        await service.close()
        log("stsyn serve: drained cleanly")

    asyncio.run(_main())


class ServiceHandle:
    """The service embedded in a background thread — the test harness.

    .. code-block:: python

        with ServiceHandle(tmp_path) as handle:
            status, payload = http_json("POST", handle.port, "/jobs", {...})

    ``__enter__`` blocks until the listening port is known; ``__exit__``
    drains the orchestrator and joins the thread.
    """

    def __init__(self, data_dir: str, *, port: int = 0, **kwargs):
        self._kwargs = dict(kwargs, port=port)
        self._data_dir = str(data_dir)
        self.service: Service | None = None
        self.port: int | None = None
        self.host: str | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def __enter__(self) -> "ServiceHandle":
        self._thread = threading.Thread(
            target=self._run, name="stsyn-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error!r}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.service = Service(self._data_dir, **self._kwargs)
            loop.run_until_complete(self.service.start())
            self.host, self.port = self.service.host, self.service.port
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.close(), self._loop
            )
            try:
                future.result(timeout=60.0)
            finally:
                self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    # convenience passthroughs for assertions
    @property
    def metrics(self) -> ServiceMetrics:
        assert self.service is not None
        return self.service.metrics

    @property
    def orchestrator(self) -> Orchestrator:
        assert self.service is not None
        return self.service.orchestrator
