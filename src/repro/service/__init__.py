"""Synthesis-as-a-service: the ``stsyn serve`` subsystem.

A stdlib-only asyncio HTTP/JSON server that turns the portfolio runtime
into a long-lived endpoint: jobs arrive over HTTP, race on the supervised
fleet (local processes or remote ``stsyn worker`` endpoints), stream their
line-flushed JSONL traces live, and are answered from the
certificate-backed content-addressed store when an identical request was
already solved — re-trusted through the independent certificate checker,
never taken on faith.

Modules:

``http``          stdlib HTTP/1.1 parsing, JSON responses, chunked/SSE streams
``jobs``          job specs, lifecycle states, the fair bounded queue
``store``         the certificate-backed result store (re-verify or quarantine)
``orchestrator``  the asyncio admission loop + executor-thread races
``metrics``       service counters and the /metrics report
``server``        routing, ``run_service``, the embeddable :class:`ServiceHandle`
"""

from .http import HttpError, MAX_BODY_BYTES, MAX_HEADER_BYTES
from .jobs import (
    BUILTIN_PROTOCOLS,
    InvalidJob,
    Job,
    JobQueue,
    JobRegistry,
    JobSpec,
    SUPPORTED_BACKENDS,
)
from .metrics import ServiceMetrics
from .orchestrator import Orchestrator, ServiceRejected
from .server import DEFAULT_SERVICE_PORT, Service, ServiceHandle, run_service
from .store import ResultStore, StoreAnswer

__all__ = [
    "BUILTIN_PROTOCOLS",
    "DEFAULT_SERVICE_PORT",
    "HttpError",
    "InvalidJob",
    "Job",
    "JobQueue",
    "JobRegistry",
    "JobSpec",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Orchestrator",
    "ResultStore",
    "Service",
    "ServiceHandle",
    "ServiceMetrics",
    "ServiceRejected",
    "StoreAnswer",
    "SUPPORTED_BACKENDS",
    "run_service",
]
