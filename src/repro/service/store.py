"""Certificate-backed result store for the synthesis service.

The service's answer cache is the same content-addressed directory the
portfolio runtime memoises into (:mod:`repro.parallel.cache`): one JSON
entry per ``protocol_fingerprint × schedule × options`` key.  Before a job
is dispatched to the fleet, :class:`ResultStore.lookup` sweeps the job's
portfolio for a stored **successful** outcome and — crucially — never
trusts it as-is:

* an entry carrying a convergence certificate is re-checked with the
  independent certificate checker (``check_certificate`` with the stored
  PSS groups as ``expected_pss``) — milliseconds, no synthesis, no BFS;
* an entry without a certificate falls back to the full
  ``check_solution`` re-verification;
* an entry that fails either check is **quarantined** (renamed to
  ``*.corrupt``, evidence preserved) and the job falls through to a fresh
  synthesis run — a tampered or torn store can cost time, never a wrong
  answer.

Fresh runs pass the same directory as ``cache_dir`` to
``synthesize_parallel``, so every completed job repopulates the store and
the next identical submission is answered in milliseconds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..cert import CertificateError, ConvergenceCertificate, check_certificate
from ..parallel.cache import SynthesisCache, protocol_fingerprint
from ..parallel.pool import ParallelOutcome


@dataclass
class StoreAnswer:
    """A store hit that survived independent re-verification."""

    outcome: ParallelOutcome
    #: True when trust came from the certificate checker (vs check_solution)
    cert_verified: bool


class ResultStore:
    """The service-level view over the shared synthesis memo directory."""

    def __init__(self, store_dir: str | os.PathLike):
        self.store_dir = os.fspath(store_dir)
        self.cache = SynthesisCache(self.store_dir)
        #: verified answers served without running synthesis
        self.hits = 0
        #: entries that failed re-verification and were moved aside
        self.quarantined = 0

    # ------------------------------------------------------------------
    def fingerprint(self, protocol, invariant) -> str:
        return protocol_fingerprint(protocol, invariant)

    def lookup(
        self, protocol, invariant, configs, *, tracer=None
    ) -> StoreAnswer | None:
        """First stored, re-verified success across the job's portfolio.

        Failed-synthesis entries are not answers for the service (another
        schedule might succeed), so only successful entries short-circuit
        the fleet.  A successful entry that fails re-verification is
        quarantined and the scan continues.
        """
        fingerprint = self.fingerprint(protocol, invariant)
        for config in configs:
            hit = self.cache.get(fingerprint, config)
            if hit is None or not hit.success:
                continue
            verdict = self._verify(protocol, invariant, hit, tracer=tracer)
            if verdict is None:
                self.cache.quarantine(fingerprint, config)
                self.quarantined += 1
                if tracer is not None:
                    tracer.event(
                        "service.store_quarantined",
                        config=config.describe(),
                    )
                continue
            self.hits += 1
            return verdict
        return None

    # ------------------------------------------------------------------
    def _verify(
        self, protocol, invariant, outcome: ParallelOutcome, *, tracer=None
    ) -> StoreAnswer | None:
        """Re-establish trust in one stored success; ``None`` = reject."""
        if outcome.pss_groups is None:
            return None
        pss_groups = [set(map(tuple, g)) for g in outcome.pss_groups]
        if outcome.certificate is not None:
            try:
                cert = ConvergenceCertificate.from_payload(outcome.certificate)
                check_certificate(
                    protocol, invariant, cert, expected_pss=pss_groups
                )
            except CertificateError as exc:
                if tracer is not None:
                    tracer.event(
                        "service.cert_check_failed",
                        config=outcome.config.describe(),
                        error=str(exc),
                    )
                return None
            return StoreAnswer(outcome=outcome, cert_verified=True)
        # no certificate: the full (slower) re-verification path
        from ..verify.stabilization import check_solution

        rebuilt = protocol.with_groups(pss_groups)
        if not check_solution(protocol, rebuilt, invariant).ok:
            return None
        return StoreAnswer(outcome=outcome, cert_verified=False)
