"""Minimal asyncio HTTP/1.1 layer for the synthesis service — stdlib only.

``stsyn serve`` deliberately avoids web frameworks: the job API is a
handful of JSON routes plus one streaming endpoint, and the repo's "no new
hard deps" rule holds for the service layer too.  This module owns the
wire mechanics so :mod:`repro.service.server` can be pure routing:

* request parsing with hard limits — header block capped at
  :data:`MAX_HEADER_BYTES`, body at a caller-chosen cap (the service
  default is :data:`MAX_BODY_BYTES`) — so a malformed or hostile request
  costs a 4xx response, never memory or a crash;
* plain responses (JSON bodies, ``Content-Length``, ``Connection:
  close`` — one request per connection keeps the server trivial and is
  what ``curl`` does anyway);
* streaming responses: HTTP/1.1 chunked transfer framing, with
  Server-Sent-Events (``text/event-stream``) or raw NDJSON payloads —
  the trace-streaming endpoint picks per the client's ``Accept`` header.

Every parse failure raises :class:`HttpError`, which the server renders as
a JSON error body with the right status code.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: refuse request lines + headers beyond this (one TCP segment is plenty)
MAX_HEADER_BYTES = 16 * 1024

#: default request-body cap; a job submission is a few KiB of JSON or
#: ``.stsyn`` source, so 1 MiB is already generous
MAX_BODY_BYTES = 1024 * 1024

#: the subset of reason phrases the service actually emits
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the server refuses; rendered as a JSON error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object; :class:`HttpError` 400 otherwise."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    def accepts(self, content_type: str) -> bool:
        return content_type in self.headers.get("accept", "")


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = MAX_BODY_BYTES,
    header_timeout: float = 10.0,
) -> Request | None:
    """Parse one request; ``None`` on a clean EOF before any bytes.

    Raises :class:`HttpError` for anything malformed or over a limit —
    oversized header block (431), oversized or lying ``Content-Length``
    (413/400), torn bodies (400) — and ``asyncio.TimeoutError`` when the
    client goes silent mid-header.
    """
    try:
        header_block = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=header_timeout
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request headers exceed the size limit")
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(431, "request headers exceed the size limit")

    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query))

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {raw_length!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {raw_length!r}")
        if length > max_body_bytes:
            # drain (and discard, chunk by chunk) what the client is
            # already sending, so it can finish writing and read the 413
            # instead of dying on a broken pipe
            remaining = length
            try:
                while remaining > 0:
                    chunk = await asyncio.wait_for(
                        reader.read(min(remaining, 64 * 1024)),
                        timeout=header_timeout,
                    )
                    if not chunk:
                        break
                    remaining -= len(chunk)
            except asyncio.TimeoutError:
                pass
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=header_timeout
            )
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")
    elif "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(
        method=method.upper(), path=path, query=query, headers=headers, body=body
    )


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------


def _status_line(status: int) -> bytes:
    reason = REASONS.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n".encode()


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> None:
    """One complete response; the connection closes afterwards."""
    headers = [
        _status_line(status),
        f"Content-Type: {content_type}\r\n".encode(),
        f"Content-Length: {len(body)}\r\n".encode(),
        b"Connection: close\r\n",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}\r\n".encode())
    writer.write(b"".join(headers) + b"\r\n" + body)
    await writer.drain()


async def send_json(
    writer: asyncio.StreamWriter, status: int, payload: dict
) -> None:
    body = (json.dumps(payload, indent=2, default=str) + "\n").encode()
    await send_response(writer, status, body)


async def send_error(
    writer: asyncio.StreamWriter, status: int, message: str
) -> None:
    await send_json(writer, status, {"error": message, "status": status})


class ChunkedStream:
    """A chunked HTTP/1.1 response the handler feeds incrementally.

    ``sse=True`` wraps every payload as a Server-Sent-Events ``data:``
    frame; otherwise payloads go out verbatim (NDJSON lines for the trace
    endpoint).  ``close`` sends the zero-length terminating chunk so the
    client knows the stream ended cleanly — a severed stream (the
    ``drop_stream`` fault drill) omits it, which clients observe as a
    truncated chunked body.
    """

    def __init__(self, writer: asyncio.StreamWriter, *, sse: bool = False):
        self.writer = writer
        self.sse = sse
        self._started = False

    async def start(self, status: int = 200) -> None:
        content_type = (
            "text/event-stream" if self.sse else "application/x-ndjson"
        )
        self.writer.write(
            _status_line(status)
            + f"Content-Type: {content_type}\r\n".encode()
            + b"Transfer-Encoding: chunked\r\n"
            + b"Cache-Control: no-store\r\n"
            + b"Connection: close\r\n\r\n"
        )
        await self.writer.drain()
        self._started = True

    async def send(self, payload: str) -> None:
        if self.sse:
            data = f"data: {payload}\n\n".encode()
        else:
            data = payload.encode() + b"\n"
        self.writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        await self.writer.drain()

    async def close(self) -> None:
        if self._started:
            self.writer.write(b"0\r\n\r\n")
            await self.writer.drain()
