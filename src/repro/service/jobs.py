"""Job model for the synthesis service: specs, lifecycle, fair queueing.

A **job** is one synthesis request: a protocol (builtin parameters or
``.stsyn`` source), an optional pinned schedule and heuristic options, a
tenant for fairness accounting, and a ``backend`` selector.  ``backend``
is carried from day one so the planned complete SMT backend (Faghih et
al.) can later be raced behind the same endpoint without an API change —
today only ``"heuristic"`` (the paper's three-pass portfolio) is
implemented and anything else is refused at validation with the supported
list, which is exactly the contract a future backend slots into.

:class:`JobSpec` validates untrusted JSON into a typed record (every
violation raises :class:`InvalidJob`, which the server maps to a 400);
:class:`Job` tracks one submission through ``queued → running →
done|failed|cancelled`` with millisecond timestamps and artifact paths;
:class:`JobQueue` is the bounded admission queue with round-robin
per-tenant fairness — one chatty tenant cannot starve the rest, and a
full queue refuses new work (429) instead of growing without bound.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

from ..core.heuristic import HeuristicOptions
from ..core.synthesizer import SynthesisConfig, default_portfolio

#: backends a job may request; only the first is implemented today — the
#: rest of the list is the extension seam for the complete SMT backend
SUPPORTED_BACKENDS = ("heuristic",)

#: builtin protocols a job may name, mirroring the CLI
BUILTIN_PROTOCOLS = (
    "token-ring",
    "matching",
    "coloring",
    "two-ring",
    "gouda-acharya",
)

#: job lifecycle states
STATES = ("queued", "running", "done", "failed", "cancelled")


class InvalidJob(ValueError):
    """A submission payload the service refuses (mapped to HTTP 400)."""


def dsl_builder(source: str):
    """Module-level builder for ``.stsyn`` source jobs — importable, so the
    TCP transport can ship it to remote workers as a builder reference."""
    from ..dsl import compile_protocol

    return compile_protocol(source)


def _builtin_builder(name: str, args: tuple):
    from ..protocols import (
        coloring,
        gouda_acharya_matching,
        matching,
        token_ring,
        two_ring,
    )

    table = {
        "token-ring": token_ring,
        "matching": matching,
        "coloring": coloring,
        "two-ring": two_ring,
        "gouda-acharya": gouda_acharya_matching,
    }
    return table[name], args


@dataclass(frozen=True)
class JobSpec:
    """A validated synthesis request."""

    protocol: str | None = None
    k: int | None = None
    domain: int | None = None
    source: str | None = None
    schedule: tuple[int, ...] | None = None
    options: dict | None = None
    backend: str = "heuristic"
    tenant: str = "default"

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Validate an untrusted JSON submission; raises :class:`InvalidJob`."""
        if not isinstance(payload, dict):
            raise InvalidJob("job payload must be a JSON object")
        known = {
            "protocol", "k", "d", "domain", "source", "schedule",
            "options", "backend", "tenant",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidJob(f"unknown job fields: {unknown}")

        backend = str(payload.get("backend", "heuristic"))
        if backend not in SUPPORTED_BACKENDS:
            raise InvalidJob(
                f"unsupported backend {backend!r}; supported: "
                f"{list(SUPPORTED_BACKENDS)} (the complete SMT backend is "
                f"planned behind the same field)"
            )

        source = payload.get("source")
        protocol = payload.get("protocol")
        if source is not None and not isinstance(source, str):
            raise InvalidJob("'source' must be a string of .stsyn text")
        if source is None:
            if protocol is None:
                raise InvalidJob(
                    "job needs either 'source' (.stsyn text) or 'protocol' "
                    f"(one of {list(BUILTIN_PROTOCOLS)})"
                )
            if protocol not in BUILTIN_PROTOCOLS:
                raise InvalidJob(
                    f"unknown protocol {protocol!r}; builtins: "
                    f"{list(BUILTIN_PROTOCOLS)}"
                )
        elif protocol is not None:
            raise InvalidJob("'source' and 'protocol' are mutually exclusive")

        def _int_or_none(name: str):
            value = payload.get(name)
            if value is None:
                return None
            if not isinstance(value, int) or isinstance(value, bool):
                raise InvalidJob(f"{name!r} must be an integer")
            if not 1 <= value <= 64:
                raise InvalidJob(f"{name!r} out of range (1..64): {value}")
            return value

        k = _int_or_none("k")
        domain = _int_or_none("d") or _int_or_none("domain")

        schedule = payload.get("schedule")
        if schedule is not None:
            if not isinstance(schedule, list) or not all(
                isinstance(v, int) and not isinstance(v, bool) for v in schedule
            ):
                raise InvalidJob("'schedule' must be a list of process indices")
            schedule = tuple(schedule)

        options = payload.get("options")
        if options is not None:
            if not isinstance(options, dict):
                raise InvalidJob("'options' must be a JSON object")
            valid = {f.name for f in dataclasses.fields(HeuristicOptions)}
            bad = sorted(set(options) - valid)
            if bad:
                raise InvalidJob(
                    f"unknown heuristic options: {bad}; valid: {sorted(valid)}"
                )
            try:
                HeuristicOptions(**options)
            except (TypeError, ValueError) as exc:
                raise InvalidJob(f"bad heuristic options: {exc}")

        tenant = str(payload.get("tenant", "default"))[:64] or "default"
        return cls(
            protocol=protocol,
            k=k,
            domain=domain,
            source=source,
            schedule=schedule,
            options=dict(options) if options else None,
            backend=backend,
            tenant=tenant,
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Fault-knob matching target: ``<tenant>/<protocol-or-source>``."""
        what = self.protocol if self.source is None else "stsyn-source"
        return f"{self.tenant}/{what}"

    def builder_spec(self) -> tuple[Callable, tuple]:
        """``(builder, args)`` — a picklable, transport-shippable pair."""
        if self.source is not None:
            return dsl_builder, (self.source,)
        if self.protocol == "token-ring":
            return _builtin_builder(
                "token-ring", (self.k or 4, self.domain or 3)
            )
        if self.protocol == "two-ring":
            return _builtin_builder("two-ring", ())
        return _builtin_builder(self.protocol, (self.k or 5,))

    def base_options(self) -> HeuristicOptions:
        return HeuristicOptions(**self.options) if self.options else HeuristicOptions()

    def configs(self, n_processes: int) -> list[SynthesisConfig]:
        """The portfolio this job races: the single pinned config when a
        schedule is given, the default portfolio otherwise."""
        base = self.base_options()
        if self.schedule is not None:
            if sorted(self.schedule) != list(range(n_processes)):
                raise InvalidJob(
                    f"'schedule' must be a permutation of 0..{n_processes - 1}"
                )
            return [SynthesisConfig(tuple(self.schedule), base)]
        return default_portfolio(n_processes, base_options=base)

    def to_payload(self) -> dict:
        return {
            "protocol": self.protocol,
            "k": self.k,
            "domain": self.domain,
            "source_bytes": len(self.source) if self.source else None,
            "schedule": list(self.schedule) if self.schedule else None,
            "options": self.options,
            "backend": self.backend,
            "tenant": self.tenant,
        }


@dataclass
class Job:
    """One submission moving through the service."""

    id: str
    spec: JobSpec
    job_dir: str
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    #: set on completion
    success: bool | None = None
    cache_hit: bool = False
    #: True when the answer's certificate passed the independent checker
    cert_verified: bool = False
    winning_config: str | None = None
    error: str | None = None
    #: multiprocessing.Event set by DELETE — polled by workers at
    #: pass/rank boundaries (the PR-3 cooperative-cancellation path)
    cancel_event: object | None = None
    cancel_requested: bool = False
    #: the job's line-flushed JSONL tracer, open from submission until the
    #: terminal state — what GET /jobs/<id>/trace streams live
    tracer: object | None = None

    @property
    def trace_path(self) -> str:
        return os.path.join(self.job_dir, "trace.jsonl")

    @property
    def certificate_path(self) -> str:
        return os.path.join(self.job_dir, "certificate.json")

    @property
    def solution_path(self) -> str:
        return os.path.join(self.job_dir, "solution.json")

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def to_payload(self) -> dict:
        payload = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_payload(),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "success": self.success,
            "cache_hit": self.cache_hit,
            "cert_verified": self.cert_verified,
            "winning_config": self.winning_config,
            "error": self.error,
            "links": {
                "self": f"/jobs/{self.id}",
                "trace": f"/jobs/{self.id}/trace",
                "certificate": f"/jobs/{self.id}/certificate",
                "solution": f"/jobs/{self.id}/solution",
            },
        }
        return payload


class JobQueue:
    """Bounded admission queue with round-robin per-tenant fairness.

    ``push`` refuses beyond ``max_queued`` (the server answers 429).
    ``pop`` serves tenants in rotation: each call takes the next tenant's
    oldest job, so a tenant submitting hundreds of jobs shares the fleet
    equally with one submitting a single job.  Thread-safe: the asyncio
    orchestrator and HTTP handlers run in one loop, but tests and the
    metrics endpoint may peek from other threads.
    """

    def __init__(self, max_queued: int = 64):
        self.max_queued = max_queued
        self._tenants: "OrderedDict[str, deque[Job]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._tenants.values())

    def push(self, job: Job) -> bool:
        with self._lock:
            if sum(len(q) for q in self._tenants.values()) >= self.max_queued:
                return False
            self._tenants.setdefault(job.spec.tenant, deque()).append(job)
            return True

    def pop(self) -> Job | None:
        """The next job, round-robin across tenants (None when empty)."""
        with self._lock:
            for tenant in list(self._tenants):
                queue = self._tenants[tenant]
                if not queue:
                    del self._tenants[tenant]
                    continue
                job = queue.popleft()
                # rotate: this tenant goes to the back of the service order
                self._tenants.move_to_end(tenant)
                if not queue:
                    del self._tenants[tenant]
                return job
            return None

    def remove(self, job: Job) -> bool:
        """Drop a still-queued job (DELETE before admission)."""
        with self._lock:
            queue = self._tenants.get(job.spec.tenant)
            if queue is None:
                return False
            try:
                queue.remove(job)
            except ValueError:
                return False
            if not queue:
                del self._tenants[job.spec.tenant]
            return True


class JobRegistry:
    """Id → job map plus monotone id assignment."""

    def __init__(self):
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._seq = itertools.count(1)

    def create(self, spec: JobSpec, jobs_dir: str) -> Job:
        job_id = f"j{next(self._seq):04d}-{uuid.uuid4().hex[:8]}"
        job_dir = os.path.join(jobs_dir, job_id)
        os.makedirs(job_dir, exist_ok=True)
        job = Job(id=job_id, spec=spec, job_dir=job_dir)
        with self._lock:
            self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def all(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts = dict.fromkeys(STATES, 0)
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts
