"""The asyncio job orchestrator behind ``stsyn serve``.

One event loop multiplexes every concurrent job over one supervised
fleet.  The flow per job:

1. **admit** — :meth:`Orchestrator.submit` validates the payload
   (:class:`~repro.service.jobs.JobSpec`), runs the service fault knobs
   (``reject_job`` → refused with 503, ``slow_admit`` → delayed
   admission) and pushes onto the bounded fair queue — a full queue is a
   429, not unbounded memory;
2. **schedule** — the admission loop pops jobs round-robin across tenants
   and starts each under an ``asyncio.Semaphore(max_concurrent)``, so the
   fleet runs at a bounded width while everything else waits queued;
3. **consult the store** — the job's protocol is built once and the
   content-addressed store is swept; a stored success whose convergence
   certificate re-checks independently answers the job in milliseconds
   (``service.cache_hits``), a tampered entry is quarantined and falls
   through (``service.store_quarantined``);
4. **race** — on a miss, ``synthesize_parallel`` runs in an executor
   thread (the race itself is process/TCP-parallel; the loop thread only
   blocks on admission) against local slots or the configured remote
   ``stsyn worker`` endpoints, with ``cache_dir`` pointed at the store so
   completion repopulates it (``service.synth_runs``);
5. **settle** — artifacts land in the job directory (``certificate.json``,
   ``solution.json``), the job trace records the terminal event, and the
   job reaches ``done``/``failed``/``cancelled``.

Cancellation (``DELETE /jobs/<id>``) removes a queued job outright; a
running job has its per-job ``multiprocessing.Event`` set, which rides the
same cooperative pass/rank-boundary polling the race's winner-found signal
uses — workers stop at their next checkpoint, the race raises
``PortfolioError`` (nothing survived) and the orchestrator maps that to
``cancelled``.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import os
import time
from concurrent.futures import ThreadPoolExecutor

from ..core.exceptions import PortfolioError
from ..faults import runtime as fault_runtime
from ..trace.tracer import Tracer
from .jobs import InvalidJob, Job, JobQueue, JobRegistry, JobSpec
from .metrics import ServiceMetrics
from .store import ResultStore


class ServiceRejected(Exception):
    """Admission refused (fault drill or backpressure); maps to 503/429."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class Orchestrator:
    """Owns the queue, the store, the fleet and every job's lifecycle."""

    def __init__(
        self,
        data_dir: str | os.PathLike,
        *,
        max_concurrent: int = 2,
        max_queued: int = 64,
        n_workers: int | None = None,
        worker_endpoints: list[str] | None = None,
        lease_timeout: float = 10.0,
        soft_deadline: float | None = None,
        metrics: ServiceMetrics | None = None,
    ):
        self.data_dir = os.fspath(data_dir)
        self.jobs_dir = os.path.join(self.data_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.store = ResultStore(os.path.join(self.data_dir, "store"))
        self.registry = JobRegistry()
        self.queue = JobQueue(max_queued=max_queued)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.max_concurrent = max_concurrent
        self.n_workers = n_workers
        self.worker_endpoints = list(worker_endpoints or [])
        self.lease_timeout = lease_timeout
        self.soft_deadline = soft_deadline
        self._semaphore = asyncio.Semaphore(max_concurrent)
        self._wakeup = asyncio.Event()
        self._closing = False
        self._admission_task: asyncio.Task | None = None
        self._job_tasks: set[asyncio.Task] = set()
        # one executor thread per concurrent race: the thread blocks on the
        # supervisor loop while the actual work runs in worker processes
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="stsyn-job"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._admission_task = asyncio.get_running_loop().create_task(
            self._admission_loop()
        )

    async def close(self) -> None:
        """Stop admitting, cancel running races, wait for them to settle."""
        self._closing = True
        self._wakeup.set()
        for job in self.registry.all():
            if job.state == "running" and job.cancel_event is not None:
                job.cancel_requested = True
                job.cancel_event.set()
        if self._admission_task is not None:
            self._admission_task.cancel()
            try:
                await self._admission_task
            except asyncio.CancelledError:
                pass
        if self._job_tasks:
            await asyncio.gather(*self._job_tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        for job in self.registry.all():
            if job.tracer is not None:
                job.tracer.close()  # idempotent; settles still-queued jobs

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    async def submit(self, payload: dict) -> Job:
        """Validate, run fault knobs, queue; raises on refusal."""
        spec = JobSpec.from_payload(payload)  # InvalidJob -> 400 upstream
        description = spec.describe()
        if fault_runtime.should_reject_job(description):
            self.metrics.inc("service.jobs_rejected")
            raise ServiceRejected(
                503, "admission refused by fault drill (reject_job)"
            )
        delay = fault_runtime.admit_delay(description)
        if delay > 0:
            # slow-admit drill: the client sees latency, not an error
            await asyncio.sleep(delay)
        if self._closing:
            self.metrics.inc("service.jobs_rejected")
            raise ServiceRejected(503, "service is shutting down")
        job = self.registry.create(spec, self.jobs_dir)
        if not self.queue.push(job):
            job.state = "failed"
            job.error = "queue full"
            self.metrics.inc("service.jobs_rejected")
            raise ServiceRejected(
                429,
                f"job queue is full ({self.queue.max_queued} queued); retry later",
            )
        self.metrics.inc("service.jobs_submitted")
        job.tracer = Tracer(job.trace_path, job=job.id, tenant=spec.tenant)
        job.tracer.event("job.submitted", spec=spec.to_payload())
        self._wakeup.set()
        return job

    async def _admission_loop(self) -> None:
        while not self._closing:
            job = self.queue.pop()
            if job is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._semaphore.acquire()
            if job.cancel_requested:
                # cancelled while queued, after pop: settle without running
                self._semaphore.release()
                self._settle_cancelled(job)
                continue
            task = asyncio.get_running_loop().create_task(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job: Job) -> bool:
        """Cooperative cancel; True when the request changed anything."""
        if job.terminal:
            return False
        job.cancel_requested = True
        if job.state == "queued" and self.queue.remove(job):
            self._settle_cancelled(job)
            return True
        if job.cancel_event is not None:
            job.cancel_event.set()
        return True

    def _settle_cancelled(self, job: Job) -> None:
        job.state = "cancelled"
        job.finished = time.time()
        self.metrics.inc("service.jobs_cancelled")
        if job.tracer is not None:
            job.tracer.event("job.cancelled", while_state="queued")
            job.tracer.close()

    # ------------------------------------------------------------------
    # the job body
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.started = time.time()
        try:
            await loop.run_in_executor(self._executor, self._execute, job)
        except Exception as exc:  # defensive: _execute handles its own errors
            job.state = "failed"
            job.error = f"internal error: {exc}"
            self.metrics.inc("service.jobs_failed")
        finally:
            job.finished = time.time()
            self._semaphore.release()

    def _execute(self, job: Job) -> None:
        """Blocking job body — runs in an executor thread."""
        from ..parallel.pool import synthesize_parallel

        spec = job.spec
        tracer = job.tracer if job.tracer is not None else Tracer(None)
        try:
            tracer.event("job.start", backend=spec.backend)
            builder, builder_args = spec.builder_spec()
            protocol, invariant = builder(*builder_args)
            configs = spec.configs(protocol.n_processes)
            tracer.event(
                "job.portfolio",
                protocol=protocol.name,
                n_configs=len(configs),
                transport="tcp" if self.worker_endpoints else "local",
            )

            answer = self.store.lookup(
                protocol, invariant, configs, tracer=tracer
            )
            if self.store.quarantined:
                self.metrics.inc(
                    "service.store_quarantined", self.store.quarantined
                )
                self.store.quarantined = 0
            if answer is not None:
                # counters live in ServiceMetrics only: /metrics folds the
                # snapshot into the job traces, so emitting them into the
                # trace as well would double-count
                self.metrics.inc("service.cache_hits")
                job.cache_hit = True
                job.cert_verified = answer.cert_verified
                self._finish(job, answer.outcome, tracer, cached=True)
                return

            self.metrics.inc("service.synth_runs")
            job.cancel_event = mp.Event()
            if job.cancel_requested:
                raise PortfolioError("cancelled before dispatch")
            race_dir = os.path.join(job.job_dir, "race")
            try:
                winner, _completed = synthesize_parallel(
                    builder,
                    builder_args,
                    configs=configs,
                    n_workers=self.n_workers,
                    trace_dir=race_dir,
                    cache_dir=self.store.store_dir,
                    soft_deadline=self.soft_deadline,
                    worker_endpoints=self.worker_endpoints or None,
                    lease_timeout=self.lease_timeout,
                    cancel_event=job.cancel_event,
                )
            except PortfolioError:
                if job.cancel_requested:
                    job.state = "cancelled"
                    self.metrics.inc("service.jobs_cancelled")
                    tracer.event("job.cancelled", while_state="running")
                    return
                raise
            if job.cancel_requested and not winner.success:
                job.state = "cancelled"
                self.metrics.inc("service.jobs_cancelled")
                tracer.event("job.cancelled", while_state="running")
                return
            job.cert_verified = winner.certificate is not None
            self._finish(job, winner, tracer, cached=False)
        except InvalidJob as exc:
            job.state = "failed"
            job.error = str(exc)
            self.metrics.inc("service.jobs_failed")
            tracer.event("job.failed", error=str(exc))
        except Exception as exc:
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self.metrics.inc("service.jobs_failed")
            tracer.event("job.failed", error=job.error)
        finally:
            tracer.close()

    def _finish(self, job: Job, outcome, tracer, *, cached: bool) -> None:
        """Write artifacts and settle the terminal state."""
        job.success = bool(outcome.success)
        job.winning_config = outcome.config.describe()
        if outcome.certificate is not None:
            with open(job.certificate_path, "w") as handle:
                json.dump(outcome.certificate, handle, indent=2)
        if outcome.pss_groups is not None:
            solution = {
                "config": outcome.config.describe(),
                "schedule": list(outcome.config.schedule),
                "success": outcome.success,
                "cached": cached,
                "remaining_deadlocks": outcome.remaining_deadlocks,
                "pss_groups": [sorted(g) for g in outcome.pss_groups],
            }
            with open(job.solution_path, "w") as handle:
                json.dump(solution, handle, indent=2)
        job.state = "done"
        tracer.event(
            "job.done",
            success=job.success,
            cached=cached,
            cert_verified=job.cert_verified,
            config=job.winning_config,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def trace_paths(self) -> list[str]:
        """Every job trace plus each race's merged trace (for /metrics)."""
        paths = []
        for job in self.registry.all():
            if os.path.exists(job.trace_path):
                paths.append(job.trace_path)
            merged = os.path.join(job.job_dir, "race", "merged.jsonl")
            if os.path.exists(merged):
                paths.append(merged)
        return paths
