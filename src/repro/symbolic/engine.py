"""The symbolic synthesis engine — STSyn as the paper actually built it.

Mirrors :mod:`repro.core` (same passes, same constraints, same portfolio
semantics) with every *state set* represented as a BDD; transition-group
bookkeeping stays explicit because candidate group sets are tiny (hundreds)
even when the state space is ``3^40``.  Cross-engine equivalence on small
instances is enforced by the test suite.

The transition relation flows through the engine in the representation
picked by ``SymbolicProtocol.relation_mode`` (frameless per-process
partitions by default — see :mod:`repro.symbolic.partition`); the rank-
decrease shortcut keeps one "down" BDD per write set so it works against
frameless partitions, and pass boundaries run a mark-and-sweep GC rooted
at the live synthesis state (:meth:`SymbolicSynthesisState.gc_roots`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..bdd import ZERO
from ..core.exceptions import (
    HeuristicFailure,
    NoStabilizingVersionError,
    UnresolvableCycleError,
)
from ..core.heuristic import HeuristicOptions
from ..core.schedules import paper_default_schedule, validate_schedule
from ..metrics.stats import SynthesisStats
from ..protocol.groups import GroupId
from ..protocol.protocol import Protocol
from ..trace.tracer import record_bdd_counters, use_tracer
from .encode import SymbolicProtocol
from .image import backward_closure, forward_closure, relation_links
from .partition import Partition
from .ranking import SymbolicRanking, compute_ranks_symbolic
from .scc import scc_algorithm_by_name


@dataclass
class SymbolicSynthesisState:
    """Symbolic twin of :class:`repro.core.add_convergence.SynthesisState`."""

    sp: SymbolicProtocol
    invariant: int
    stats: SynthesisStats
    scc_algorithm: str = "gentilini"
    cycle_resolution_mode: str = "batch"
    pss_groups: list[set[tuple[int, int]]] = field(init=False)
    added_groups: list[set[tuple[int, int]]] = field(init=False)
    removed_groups: list[set[tuple[int, int]]] = field(init=False)
    #: pss transition relation in ``sp.relation_mode``'s representation,
    #: kept incrementally: per-cluster :class:`Partition`s (partitioned),
    #: per-process full-frame BDDs (process), or one union BDD (monolithic)
    relations: list = field(init=False)
    #: states with at least one outgoing transition (= union of rcubes)
    enabled: int = field(init=False)

    def __post_init__(self) -> None:
        protocol = self.sp.protocol
        sym = self.sp.sym
        self.invariant = sym.bdd.and_(self.invariant, sym.domain_cur)
        self.pss_groups = [set(g) for g in protocol.groups]
        self.added_groups = [set() for _ in protocol.groups]
        self.removed_groups = [set() for _ in protocol.groups]
        self._rebuild_relations()
        self._touch_cache: list[dict[int, bool]] = [
            {} for _ in range(protocol.n_processes)
        ]
        self._rcube2_cache: dict[tuple[int, int, int], int] = {}
        # Rank-decrease shortcut (sound by Lemma IV.2): while every
        # transition of pss|¬I strictly decreases the rank, the relation is
        # acyclic and Identify_Resolve_Cycles can accept candidates whose
        # transitions also all decrease rank, with no SCC search at all.
        self._ranks: list[int] | None = None
        # "down" BDDs ∨_i (Rank_i ∧ Rank_{i-1} at the successor), keyed by
        # write set: None = full-frame prime; a Partition's write_next =
        # the subset rename that evaluates a predicate at the successor of
        # a frameless transition (unwritten variables read current bits).
        self._down_cache: dict[tuple[int, ...] | None, int] = {}
        self._all_decreasing = False

    def install_rank_shortcut(self, ranking: "SymbolicRanking") -> None:
        """Enable the Lemma-IV.2 acyclicity shortcut from a ranking."""
        self._ranks = ranking.ranks
        self._down_cache = {}
        self._all_decreasing = all(
            self._relation_is_decreasing(rel) for rel in self.relations
        )

    def _down_for(self, part: Partition | None) -> int:
        """``∨_i Rank_i ∧ Rank_{i-1}[successor]`` for one write set."""
        assert self._ranks is not None
        key = None if part is None else part.write_next
        cached = self._down_cache.get(key)
        if cached is None:
            sym = self.sp.sym
            if part is None:
                at_succ = sym.prime
            else:
                mapping = dict(part.cur_to_next)
                at_succ = lambda f: sym.bdd.rename(f, mapping)  # noqa: E731
            cached = ZERO
            for i in range(1, len(self._ranks)):
                cached = sym.bdd.or_(
                    cached,
                    sym.bdd.and_(self._ranks[i], at_succ(self._ranks[i - 1])),
                )
            self._down_cache[key] = cached
        return cached

    def _relation_is_decreasing(self, relation) -> bool:
        """Is every ``¬I -> ¬I`` transition of ``relation`` strictly
        rank-decreasing (from Rank[i] into Rank[i-1])?

        Accepts either representation: for a frameless partition the
        successor-side predicates are renamed only on the written bits —
        against the full-frame ``down`` the unconstrained unwritten next
        bits would spuriously fail the check.
        """
        sym = self.sp.sym
        not_i = self.not_i
        if isinstance(relation, Partition):
            succ_not_i = sym.bdd.rename(not_i, dict(relation.cur_to_next))
            restricted = sym.bdd.and_(
                sym.bdd.and_(relation.rel, not_i), succ_not_i
            )
            return sym.bdd.diff(restricted, self._down_for(relation)) == ZERO
        restricted = sym.bdd.and_(
            sym.bdd.and_(relation, not_i), sym.prime(not_i)
        )
        return sym.bdd.diff(restricted, self._down_for(None)) == ZERO

    def _rebuild_relations(self) -> None:
        sym = self.sp.sym
        self.relations = self.sp.relations_for(self.pss_groups)
        self.enabled = sym.bdd.or_all(
            self.sp.rcube(j, rcode)
            for j, gs in enumerate(self.pss_groups)
            for (rcode, _w) in gs
        )

    # ------------------------------------------------------------------
    @property
    def not_i(self) -> int:
        sym = self.sp.sym
        return sym.bdd.diff(sym.domain_cur, self.invariant)

    def deadlocks(self) -> int:
        sym = self.sp.sym
        return sym.bdd.diff(self.not_i, self.enabled)

    def rcode_touches_i(self, j: int, rcode: int) -> bool:
        cached = self._touch_cache[j].get(rcode)
        if cached is None:
            cached = (
                self.sp.sym.bdd.and_(self.sp.rcube(j, rcode), self.invariant)
                != ZERO
            )
            self._touch_cache[j][rcode] = cached
        return cached

    def rcube_after_write(self, j: int, rcode: int, wcode: int) -> int:
        """Cube of the readable valuation *after* the group's write."""
        key = (j, rcode, wcode)
        cached = self._rcube2_cache.get(key)
        if cached is None:
            table = self.sp.protocol.tables[j]
            values = list(table.values_of_rcode(rcode))
            wvals = table.values_of_wcode(wcode)
            for pos, v in enumerate(table.write_vars):
                values[table.read_vars.index(v)] = wvals[pos]
            sym = self.sp.sym
            cached = sym.bdd.and_all(
                sym.value_cube(v, val)
                for v, val in zip(table.read_vars, values)
            )
            self._rcube2_cache[key] = cached
        return cached

    def commit_group(self, j: int, rcode: int, wcode: int) -> None:
        sym = self.sp.sym
        gid = (j, rcode, wcode)
        if self._all_decreasing and self._ranks is not None:
            self._all_decreasing = self._relation_is_decreasing(
                self.sp.candidate_relation(gid)
            )
        self.pss_groups[j].add((rcode, wcode))
        self.added_groups[j].add((rcode, wcode))
        mode = self.sp.relation_mode
        if mode == "partitioned":
            ci = self.sp.cluster_index(j)
            part = self.relations[ci]
            lifted = sym.bdd.and_(
                self.sp.group_partition(gid).rel, self.sp.cluster_lift(j, ci)
            )
            self.relations[ci] = part.merged(sym.bdd.or_(part.rel, lifted))
        elif mode == "process":
            self.relations[j] = sym.bdd.or_(
                self.relations[j], self.sp.group_relation(gid)
            )
        else:  # monolithic: a single union relation
            self.relations[0] = sym.bdd.or_(
                self.relations[0], self.sp.group_relation(gid)
            )
        self.enabled = sym.bdd.or_(self.enabled, self.sp.rcube(j, rcode))
        self.stats.bump("groups_added")

    def remove_group(self, j: int, rcode: int, wcode: int) -> None:
        self.pss_groups[j].discard((rcode, wcode))
        self.removed_groups[j].add((rcode, wcode))
        self.stats.bump("groups_removed")
        self._rebuild_relations()

    def gc_roots(self):
        """Every node id the synthesis state (and its protocol/space
        caches) still needs — the root set for pass-boundary GC."""
        yield from self.sp.gc_roots()
        yield self.invariant
        yield self.enabled
        for rel in self.relations:
            yield rel.rel if isinstance(rel, Partition) else rel
        yield from self._rcube2_cache.values()
        if self._ranks is not None:
            yield from self._ranks
        yield from self._down_cache.values()

    def collect_garbage(self, extra_roots: Sequence[int] = ()) -> int:
        """Mark-and-sweep the BDD manager with this state's roots
        (called between synthesis passes; returns #nodes collected)."""
        sym = self.sp.sym
        roots = list(self.gc_roots())
        roots.extend(extra_roots)
        collected = sym.bdd.collect_garbage(roots)
        self.stats.bump("gc_passes")
        return collected


def identify_resolve_cycles_symbolic(
    state: SymbolicSynthesisState, candidates: list[GroupId]
) -> set[GroupId]:
    """Symbolic ``Identify_Resolve_Cycles``: region-restricted SCC search."""
    if not candidates:
        return set()
    sym = state.sp.sym
    if state._all_decreasing and state._ranks is not None:
        # a union decreases rank iff every disjunct does, so candidates
        # can be checked one by one against the cached per-write-set downs
        if all(
            state._relation_is_decreasing(state.sp.candidate_relation(g))
            for g in candidates
        ):
            state.stats.bump("scc_skipped_by_rank_shortcut")
            return set()
    state.stats.bump("identify_resolve_cycles_calls")
    with state.stats.timer("scc"), state.stats.tracer.span(
        "identify_resolve_cycles", n_candidates=len(candidates)
    ) as span:
        not_i = state.not_i
        cand_rels = [state.sp.candidate_relation(g) for g in candidates]
        srcs = sym.bdd.and_(
            sym.bdd.or_all(state.sp.rcube(g[0], g[1]) for g in candidates),
            not_i,
        )
        dsts = sym.bdd.and_(
            sym.bdd.or_all(
                state.rcube_after_write(*g) for g in candidates
            ),
            not_i,
        )
        # For the closures and the SCC search the candidates are merged
        # into as few disjuncts as the representation allows — every
        # symbolic step pays one traversal per disjunct, so candidate
        # count must not inflate the relation list.  Partitioned mode
        # folds the candidates straight into copies of the committed
        # cluster partitions (lifting each process's frameless relation
        # with the cluster's partial frame keeps the union well-formed),
        # so the step cost stays at the cluster count.
        by_proc: dict[int, list[GroupId]] = {}
        for g in candidates:
            by_proc.setdefault(g[0], []).append(g)
        if state.sp.relation_mode == "partitioned":
            aug: dict[int, int] = {}
            for j, gs in by_proc.items():
                ci = state.sp.cluster_index(j)
                lifted = sym.bdd.and_(
                    state.sp.partition_of(j, gs).rel,
                    state.sp.cluster_lift(j, ci),
                )
                aug[ci] = sym.bdd.or_(aug.get(ci, ZERO), lifted)
            relations = [
                part
                if ci not in aug
                else part.merged(sym.bdd.or_(part.rel, aug[ci]))
                for ci, part in enumerate(state.relations)
            ]
        elif state.sp.relation_mode == "monolithic":
            cand_union = sym.bdd.or_all(
                state.sp.group_relation(g) for g in candidates
            )
            relations = [sym.bdd.or_(state.relations[0], cand_union)]
        else:  # process: fold into the owning process's full-frame relation
            relations = list(state.relations)
            for j, gs in by_proc.items():
                relations[j] = sym.bdd.or_(
                    relations[j],
                    sym.bdd.or_all(state.sp.group_relation(g) for g in gs),
                )
        # Any new cycle contains a candidate edge (s, t) with t reaching s,
        # so it is confined to backward(srcs) ∩ forward(dsts).  The backward
        # closure is computed first: candidate sources are deadlock-ish
        # states with few incoming paths, so it is usually tiny and the
        # ``dsts ∩ B = ∅`` test resolves most calls without the (much
        # larger) forward closure.
        bwd = backward_closure(sym, relations, srcs, within=not_i)
        if sym.bdd.and_(bwd, dsts) == ZERO:
            state.stats.bump("scc_skipped_by_backward_check")
            return set()
        fwd = forward_closure(sym, relations, dsts, within=not_i)
        region = sym.bdd.and_(fwd, bwd)
        if region == ZERO:
            return set()
        algorithm = scc_algorithm_by_name(state.scc_algorithm)
        with use_tracer(state.stats.tracer):
            sccs = algorithm(sym, relations, region)
        span["n_sccs"] = len(sccs)
        state.stats.record_sccs(
            [sym.count_states(c) for c in sccs],
            [sym.bdd.size(c) for c in sccs],
        )
        if sccs:
            state.stats.bump("cycles_resolved", len(sccs))
        if not sccs:
            return set()
        bad: set[GroupId] = set()
        for gid, rel in zip(candidates, cand_rels):
            for scc in sccs:
                if relation_links(sym, rel, scc, scc):
                    bad.add(gid)
                    state.stats.bump("groups_rejected_cycles")
                    break
    return bad


def add_recovery_symbolic(
    state: SymbolicSynthesisState,
    from_set: int,
    to_set: int,
    process: int,
    *,
    rule_out_deadlock_targets: bool,
    deadlocks: int | None = None,
) -> int:
    """Symbolic ``Add_Recovery`` for one process; returns #groups committed."""
    sym = state.sp.sym
    bdd = sym.bdd
    table = state.sp.protocol.tables[process]
    read_bits = [
        b for v in table.read_vars for b in sym.cur_levels[v]
    ]
    if rule_out_deadlock_targets and deadlocks is None:
        deadlocks = state.deadlocks()
    pss_j = state.pss_groups[process]

    candidates: list[GroupId] = []
    for rcode in range(table.n_rvals):
        if state.rcode_touches_i(process, rcode):
            continue  # C1
        src = bdd.and_(state.sp.rcube(process, rcode), from_set)
        if src == ZERO:
            continue
        src_u = bdd.exists(read_bits, src)  # as a function of unreadables
        self_w = int(table.self_wcode[rcode])
        for wcode in range(table.n_wvals):
            if wcode == self_w or (rcode, wcode) in pss_j:
                continue
            rcube2 = state.rcube_after_write(process, rcode, wcode)
            if rule_out_deadlock_targets and bdd.and_(rcube2, deadlocks) != ZERO:
                continue  # C4
            dst_u = bdd.exists(read_bits, bdd.and_(rcube2, to_set))
            if bdd.and_(src_u, dst_u) == ZERO:
                continue
            candidates.append((process, rcode, wcode))

    if not candidates:
        return 0
    committed = 0
    mode = state.cycle_resolution_mode
    rejected: list[GroupId] = []
    if mode in ("batch", "hybrid"):
        bad = identify_resolve_cycles_symbolic(state, candidates)
        for gid in candidates:
            if gid in bad:
                rejected.append(gid)
            else:
                state.commit_group(*gid)
                committed += 1
    else:
        rejected = list(candidates)
    if mode in ("sequential", "hybrid"):
        for gid in rejected:
            if identify_resolve_cycles_symbolic(state, [gid]):
                continue
            state.commit_group(*gid)
            committed += 1
    return committed


def add_convergence_symbolic(
    state: SymbolicSynthesisState,
    from_set: int,
    to_set: int,
    schedule: Sequence[int],
    pass_no: int,
) -> bool:
    deadlocks = state.deadlocks()
    stats = state.stats
    sym = state.sp.sym
    for j in schedule:
        # Deadlock *counting* (a model-count over the BDD) is only worth
        # paying for when a tracer is attached; the untraced fast path
        # keeps the historical behaviour.
        if stats.tracer.enabled:
            before = sym.count_states(deadlocks)
            with stats.tracer.span(
                "add_recovery", process=j, pass_no=pass_no
            ) as span:
                committed = add_recovery_symbolic(
                    state,
                    from_set,
                    to_set,
                    j,
                    rule_out_deadlock_targets=(pass_no == 1),
                    deadlocks=deadlocks,
                )
                deadlocks = state.deadlocks()
                resolved = before - sym.count_states(deadlocks)
                span["committed"] = committed
                span["deadlocks_resolved"] = resolved
            if resolved:
                stats.bump(f"pass{pass_no}_deadlocks_resolved", resolved)
        else:
            add_recovery_symbolic(
                state,
                from_set,
                to_set,
                j,
                rule_out_deadlock_targets=(pass_no == 1),
                deadlocks=deadlocks,
            )
            deadlocks = state.deadlocks()
        if deadlocks == ZERO:
            return True
    return False


@dataclass
class SymbolicSynthesisResult:
    """Outcome of one symbolic heuristic run."""

    success: bool
    sp: SymbolicProtocol
    pss_groups: list[set[tuple[int, int]]]
    added_groups: list[set[tuple[int, int]]]
    removed_groups: list[set[tuple[int, int]]]
    ranking: SymbolicRanking
    stats: SynthesisStats
    schedule: tuple[int, ...]
    pass_completed: int
    remaining_deadlocks: int  # BDD of deadlock states left (ZERO on success)

    def to_protocol(self, name: str | None = None) -> Protocol:
        """The synthesized protocol as a plain (group-set) protocol object."""
        base = self.sp.protocol
        return base.with_groups(
            self.pss_groups, name=name or f"{base.name}_ss"
        )

    @property
    def n_added(self) -> int:
        return sum(len(g) for g in self.added_groups)

    def certificate(self):
        """Emit the :class:`~repro.cert.ConvergenceCertificate` of this run.

        Recomputes the longest-path levels by symbolic backward induction
        and stores them as per-rank value-cube lists; the artifact checks
        under either engine.  Small spaces only (the fingerprint needs the
        explicit invariant mask).
        """
        from ..cert.emit import (
            CertificateEmissionError,
            emit_certificate_symbolic,
        )

        if not self.success:
            raise CertificateEmissionError(
                "cannot certify an unsuccessful synthesis result"
            )
        return emit_certificate_symbolic(
            self.sp,
            self.ranking.invariant,
            self.pss_groups,
            schedule=self.schedule,
            added=[
                (j, r, w)
                for j, gs in enumerate(self.added_groups)
                for (r, w) in sorted(gs)
            ],
            removed=[
                (j, r, w)
                for j, gs in enumerate(self.removed_groups)
                for (r, w) in sorted(gs)
            ],
        )

    def record_space_metrics(self) -> None:
        """Fill ``stats.bdd_nodes`` with the paper's space metrics:
        total program size (shared BDD of the pss relations) and manager
        total."""
        sym = self.sp.sym
        relations = self.sp.process_relations(self.pss_groups)
        self.stats.bdd_nodes["total_program_size"] = sym.bdd.size_many(relations)
        self.stats.bdd_nodes["manager_nodes"] = sym.bdd.num_nodes()


def _closure_check_symbolic(
    state: SymbolicSynthesisState,
) -> None:
    sym = state.sp.sym
    from ..core.exceptions import NotClosedError
    from .image import postimage_union

    escaped = sym.bdd.diff(
        postimage_union(sym, state.relations, state.invariant),
        state.invariant,
    )
    if sym.bdd.and_(escaped, sym.domain_cur) != ZERO:
        raise NotClosedError(
            f"I is not closed in {state.sp.protocol.name!r} (symbolic check)"
        )


def _preprocess_cycles_symbolic(
    state: SymbolicSynthesisState, options: HeuristicOptions
) -> None:
    sym = state.sp.sym
    if all(
        (rel.rel if isinstance(rel, Partition) else rel) == ZERO
        for rel in state.relations
    ):
        return  # an empty relation has no cycles (common: empty input protocol)
    algorithm = scc_algorithm_by_name(state.scc_algorithm)
    with state.stats.timer("scc"), use_tracer(state.stats.tracer):
        sccs = algorithm(sym, state.relations, state.not_i)
    if not sccs:
        return
    state.stats.record_sccs(
        [sym.count_states(c) for c in sccs],
        [sym.bdd.size(c) for c in sccs],
    )
    offenders: list[GroupId] = []
    for j, gs in enumerate(state.pss_groups):
        for rcode, wcode in sorted(gs):
            rel = state.sp.candidate_relation((j, rcode, wcode))
            for scc in sccs:
                if relation_links(sym, rel, scc, scc):
                    if state.rcode_touches_i(j, rcode):
                        raise UnresolvableCycleError(
                            f"input protocol has a non-progress cycle through "
                            f"group ({j},{rcode},{wcode}) whose groupmates "
                            f"start in I"
                        )
                    offenders.append((j, rcode, wcode))
                    break
    if not options.remove_input_cycles:
        raise UnresolvableCycleError("input cycles present and removal disabled")
    for gid in offenders:
        state.remove_group(*gid)


def add_strong_convergence_symbolic(
    protocol: Protocol,
    invariant: int,
    *,
    sp: SymbolicProtocol | None = None,
    schedule: Sequence[int] | None = None,
    options: HeuristicOptions | None = None,
    stats: SynthesisStats | None = None,
    scc_algorithm: str | None = None,
) -> SymbolicSynthesisResult:
    """The three-pass heuristic, fully symbolic.

    ``invariant`` is a BDD over ``sp.sym`` (build it with the case studies'
    ``*_invariant_bdd`` helpers or ``SymbolicSpace.from_predicate``).
    ``scc_algorithm`` overrides ``options.scc_algorithm`` when given (a
    :data:`repro.symbolic.scc.SCC_ALGORITHMS` name).
    """
    options = options or HeuristicOptions()
    if scc_algorithm is None:
        scc_algorithm = options.scc_algorithm
    scc_algorithm_by_name(scc_algorithm)  # validate the name up front
    stats = stats if stats is not None else SynthesisStats()
    sp = sp if sp is not None else SymbolicProtocol(protocol)
    k = protocol.n_processes
    schedule = (
        validate_schedule(schedule, k)
        if schedule is not None
        else paper_default_schedule(k)
    )

    with stats.timer("total"):
        state = SymbolicSynthesisState(
            sp,
            invariant,
            stats,
            scc_algorithm=scc_algorithm,
            cycle_resolution_mode=options.cycle_resolution_mode,
        )
        if options.disable_cycle_resolution:
            raise ValueError(
                "disable_cycle_resolution is an explicit-engine-only ablation"
            )
        with stats.tracer.span("heuristic.preprocess"):
            _closure_check_symbolic(state)
            _preprocess_cycles_symbolic(state, options)

        with stats.timer("ranking"):
            ranking = compute_ranks_symbolic(
                sp, state.invariant, tracer=stats.tracer
            )
        state.install_rank_shortcut(ranking)
        if not ranking.admits_stabilization():
            raise NoStabilizingVersionError(
                f"{ranking.n_unreachable()} states have rank ∞; no "
                f"stabilizing version exists (Theorem IV.1)",
                n_unreachable=ranking.n_unreachable(),
            )

        def make_result(success: bool, pass_no: int) -> SymbolicSynthesisResult:
            record_bdd_counters(stats.tracer, sp.sym.bdd)
            stats.tracer.counter_set(
                "symbolic.partition_count", len(state.relations)
            )
            return SymbolicSynthesisResult(
                success=success,
                sp=sp,
                pss_groups=[set(g) for g in state.pss_groups],
                added_groups=[set(g) for g in state.added_groups],
                removed_groups=[set(g) for g in state.removed_groups],
                ranking=ranking,
                stats=stats,
                schedule=schedule,
                pass_completed=pass_no,
                remaining_deadlocks=state.deadlocks(),
            )

        if state.deadlocks() == ZERO:
            return make_result(True, 0)

        sym = sp.sym
        # ranking roots beyond what the state itself tracks
        gc_extra = (ranking.unreachable,)
        # Dead intermediates of the closure/SCC/ranking phases are the bulk
        # of the manager at this point; sweep them before the passes start
        # and again at every pass boundary so no pass drags the previous
        # one's garbage through its image computations.
        state.collect_garbage(gc_extra)
        for pass_no, enabled in ((1, options.enable_pass1), (2, options.enable_pass2)):
            if not enabled:
                continue
            stats.bump(f"pass{pass_no}_runs")
            done = False
            with stats.tracer.span(f"heuristic.pass{pass_no}") as span:
                for i in range(1, ranking.max_rank + 1):
                    from_set = sym.bdd.and_(state.deadlocks(), ranking.ranks[i])
                    if from_set == ZERO:
                        continue
                    if add_convergence_symbolic(
                        state, from_set, ranking.ranks[i - 1], schedule, pass_no
                    ):
                        done = True
                        break
                done = done or state.deadlocks() == ZERO
                span["done"] = done
            if done:
                return make_result(True, pass_no)
            state.collect_garbage(gc_extra)

        if options.enable_pass3:
            stats.bump("pass3_runs")
            with stats.tracer.span("heuristic.pass3") as span:
                done = add_convergence_symbolic(
                    state, state.deadlocks(), sym.domain_cur, schedule, pass_no=3
                )
                done = done or state.deadlocks() == ZERO
                span["done"] = done
            if done:
                return make_result(True, 3)

        result = make_result(False, 3)
    if options.raise_on_failure:
        raise HeuristicFailure(
            f"deadlock states remain after all passes (symbolic) for "
            f"{protocol.name!r}",
            remaining_deadlocks=sp.sym.count_states(result.remaining_deadlocks),
        )
    return result
