"""Symbolic SCC detection.

Two implementations over BDD state sets:

* :func:`xie_beerel_sccs` — the classic forward/backward-set algorithm
  (quadratic number of symbolic steps, simple and obviously correct);
* :func:`gentilini_sccs` — Gentilini, Piazza & Policriti's skeleton-based
  algorithm (linear number of symbolic steps) — the algorithm the paper's
  ``Detect_SCC`` implements (Section V cites it explicitly).

Both return the *cyclic* SCCs only (>= 2 states; the group model admits no
self-loops).  The two are differentially tested against the explicit Tarjan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..bdd import ZERO
from ..trace.tracer import current_tracer
from .encode import SymbolicSpace
from .image import RelationLike, postimage_union, preimage_union


def _pre(sym: SymbolicSpace, relations: Sequence[RelationLike], states: int, v: int) -> int:
    return sym.bdd.and_(preimage_union(sym, relations, states), v)


def _post(sym: SymbolicSpace, relations: Sequence[RelationLike], states: int, v: int) -> int:
    return sym.bdd.and_(postimage_union(sym, relations, states), v)


def _pick_singleton(sym: SymbolicSpace, states: int) -> int:
    """A one-state subset of ``states`` as a BDD cube."""
    cube = sym.pick_cube(states)
    assert cube != ZERO
    return cube


def _scc_of(
    sym: SymbolicSpace, relations: Sequence[RelationLike], node: int, fw: int
) -> int:
    """The SCC containing ``node``: backward closure of ``node`` inside its
    forward set (the inner loop of both algorithms)."""
    scc = node
    while True:
        grow = sym.bdd.diff(_pre(sym, relations, scc, fw), scc)
        if grow == ZERO:
            return scc
        scc = sym.bdd.or_(scc, grow)


def xie_beerel_sccs(
    sym: SymbolicSpace, relations: Sequence[RelationLike], universe: int
) -> list[int]:
    """All cyclic SCCs within ``universe`` (a current-bits state set)."""
    tracer = current_tracer()
    out: list[int] = []
    with tracer.span("scc.xie_beerel") as span:
        work = [sym.bdd.and_(universe, sym.domain_cur)]
        while work:
            v = work.pop()
            if v == ZERO:
                continue
            tracer.count("scc.xie_beerel_picks")
            node = _pick_singleton(sym, v)
            fw = _forward_set(sym, relations, node, v)
            scc = _scc_of(sym, relations, node, fw)
            if sym.count_states(scc) >= 2:
                out.append(scc)
            work.append(sym.bdd.diff(fw, scc))
            work.append(sym.bdd.diff(v, fw))
        span["n_sccs"] = len(out)
    return out


def _forward_set(
    sym: SymbolicSpace, relations: Sequence[RelationLike], start: int, v: int
) -> int:
    fw = sym.bdd.and_(start, v)
    frontier = fw
    while frontier != ZERO:
        new = sym.bdd.diff(_post(sym, relations, frontier, v), fw)
        fw = sym.bdd.or_(fw, new)
        frontier = new
    return fw


# ----------------------------------------------------------------------
# Gentilini-Piazza-Policriti
# ----------------------------------------------------------------------


@dataclass
class _Task:
    v: int  # vertex subset still to decompose
    s: int  # skeleton (node set of a path through V)
    n: int  # preferred start node (singleton or empty)


def _skel_forward(
    sym: SymbolicSpace, relations: Sequence[RelationLike], v: int, node: int
) -> tuple[int, int, int]:
    """Forward set of ``node`` in ``v`` plus a skeleton of a longest
    BFS path: returns ``(FW, newS, newN)``."""
    layers: list[int] = []
    fw = ZERO
    layer = sym.bdd.and_(node, v)
    while layer != ZERO:
        layers.append(layer)
        fw = sym.bdd.or_(fw, layer)
        layer = sym.bdd.diff(_post(sym, relations, layer, v), fw)
    # walk the onion backwards picking one predecessor per layer
    new_n = _pick_singleton(sym, layers[-1])
    skel = new_n
    current = new_n
    for layer in reversed(layers[:-1]):
        preds = sym.bdd.and_(
            preimage_union(sym, relations, current), layer
        )
        current = _pick_singleton(sym, preds)
        skel = sym.bdd.or_(skel, current)
    return fw, skel, new_n


def gentilini_sccs(
    sym: SymbolicSpace, relations: Sequence[RelationLike], universe: int
) -> list[int]:
    """Gentilini et al.'s SCC decomposition in a linear number of symbolic
    steps (the paper's ``Detect_SCC``).  Returns cyclic SCCs only."""
    tracer = current_tracer()
    out: list[int] = []
    work = [
        _Task(v=sym.bdd.and_(universe, sym.domain_cur), s=ZERO, n=ZERO)
    ]
    with tracer.span("scc.gentilini") as span:
        out.extend(_gentilini_loop(sym, relations, work, tracer))
        span["n_sccs"] = len(out)
    return out


def _gentilini_loop(sym, relations, work, tracer) -> list[int]:
    out: list[int] = []
    while work:
        task = work.pop()
        v = task.v
        if v == ZERO:
            continue
        tracer.count("scc.gentilini_tasks")
        # Sanitise inherited guidance: correctness only needs n ∈ v, and the
        # skeleton invariant (S \ SCC ⊆ V \ FW) can be weakened by the
        # arbitrary pick below, so clip both to v defensively.
        s = sym.bdd.and_(task.s, v)
        n = sym.bdd.and_(task.n, v)
        if n == ZERO:
            n = _pick_singleton(sym, s if s != ZERO else v)
        fw, new_s, new_n = _skel_forward(sym, relations, v, n)
        scc = _scc_of(sym, relations, n, fw)
        if sym.count_states(scc) >= 2:
            out.append(scc)
        # recursion 1: the forward set minus the found SCC, guided by the
        # remainder of the freshly built skeleton
        work.append(
            _Task(
                v=sym.bdd.diff(fw, scc),
                s=sym.bdd.diff(new_s, scc),
                n=sym.bdd.diff(new_n, scc),
            )
        )
        # recursion 2: everything outside the forward set, guided by the
        # remainder of the inherited skeleton; the new start node is the
        # skeleton predecessor of the removed segment
        s_rest = sym.bdd.diff(s, scc)
        n2 = ZERO
        removed_on_skel = sym.bdd.and_(scc, s)
        if removed_on_skel != ZERO and s_rest != ZERO:
            n2 = sym.bdd.and_(
                preimage_union(sym, relations, removed_on_skel), s_rest
            )
            if n2 != ZERO:
                n2 = _pick_singleton(sym, n2)
        work.append(_Task(v=sym.bdd.diff(v, fw), s=s_rest, n=n2))
    return out
