"""Symbolic SCC detection.

Three implementations over BDD state sets:

* :func:`xie_beerel_sccs` — the classic forward/backward-set algorithm
  (quadratic number of symbolic steps, simple and obviously correct);
* :func:`gentilini_sccs` — Gentilini, Piazza & Policriti's skeleton-based
  algorithm (linear number of symbolic steps) — the algorithm the paper's
  ``Detect_SCC`` implements (Section V cites it explicitly);
* :func:`lockstep_sccs` — Bloem–Gazi–Somenzi lockstep search
  (``O(n log n)`` symbolic steps): forward and backward sets grow in
  lockstep, the first to converge caps the other, and a trimming prepass
  strips the acyclic fringe before each pick.

All return the *cyclic* SCCs only (>= 2 states; the group model admits no
self-loops) and are differentially tested against the explicit Tarjan.
Every fixpoint iteration issues one fused kernel sweep
(:func:`repro.symbolic.image.preimage_union` with ``within``/``subtract``)
instead of a per-cluster loop of scalar products — see
``docs/ARCHITECTURE.md`` on algorithm-layer batching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..bdd import ZERO
from ..trace.tracer import current_tracer
from .encode import SymbolicSpace
from .image import RelationLike, postimage_union, preimage_union


class SymbolicInternalError(RuntimeError):
    """An internal invariant of the symbolic algorithms failed.

    Raised instead of ``assert`` so the check survives ``python -O``."""


def _pre(sym: SymbolicSpace, relations: Sequence[RelationLike], states: int, v: int) -> int:
    return preimage_union(sym, relations, states, within=v)


def _post(sym: SymbolicSpace, relations: Sequence[RelationLike], states: int, v: int) -> int:
    return postimage_union(sym, relations, states, within=v)


def _pick_singleton(sym: SymbolicSpace, states: int) -> int:
    """A one-state subset of ``states`` as a BDD cube.

    Every caller maintains ``states ⊆ domain_cur``, so the pick skips the
    domain guard (``assume_valid``)."""
    cube = sym.pick_cube(states, assume_valid=True)
    if cube == ZERO:
        raise SymbolicInternalError(
            "_pick_singleton called on an empty state set"
        )
    return cube


def _scc_of(
    sym: SymbolicSpace, relations: Sequence[RelationLike], node: int, fw: int
) -> int:
    """The SCC containing ``node``: backward closure of ``node`` inside its
    forward set (the inner loop of both algorithms)."""
    scc = node
    while True:
        grow = preimage_union(sym, relations, scc, within=fw, subtract=scc)
        if grow == ZERO:
            return scc
        scc = sym.bdd.or_(scc, grow)


def xie_beerel_sccs(
    sym: SymbolicSpace, relations: Sequence[RelationLike], universe: int
) -> list[int]:
    """All cyclic SCCs within ``universe`` (a current-bits state set)."""
    tracer = current_tracer()
    out: list[int] = []
    with tracer.span("scc.xie_beerel") as span:
        work = [sym.bdd.and_(universe, sym.domain_cur)]
        while work:
            v = work.pop()
            if v == ZERO:
                continue
            tracer.count("scc.xie_beerel_picks")
            node = _pick_singleton(sym, v)
            fw = _forward_set(sym, relations, node, v)
            scc = _scc_of(sym, relations, node, fw)
            if scc != node:  # scc ⊇ node, so inequality ⇔ ≥ 2 states
                out.append(scc)
            work.append(sym.bdd.diff(fw, scc))
            work.append(sym.bdd.diff(v, fw))
        span["n_sccs"] = len(out)
    return out


def _forward_set(
    sym: SymbolicSpace, relations: Sequence[RelationLike], start: int, v: int
) -> int:
    fw = sym.bdd.and_(start, v)
    frontier = fw
    while frontier != ZERO:
        new = postimage_union(sym, relations, frontier, within=v, subtract=fw)
        fw = sym.bdd.or_(fw, new)
        frontier = new
    return fw


# ----------------------------------------------------------------------
# Bloem-Gazi-Somenzi lockstep
# ----------------------------------------------------------------------


def _trim(sym: SymbolicSpace, relations: Sequence[RelationLike], v: int) -> int:
    """Strip the acyclic fringe: iterate ``v ← v ∩ pre(v) ∩ post(v)``
    until fixpoint.  States without both a predecessor and a successor in
    ``v`` lie on no cycle, so no cyclic SCC is lost; each round is two
    fused sweeps."""
    while v != ZERO:
        has_succ = preimage_union(sym, relations, v, within=v)
        if has_succ == ZERO:
            return ZERO
        nxt = postimage_union(sym, relations, v, within=has_succ)
        if nxt == v:
            return v
        v = nxt
    return v


def lockstep_sccs(
    sym: SymbolicSpace, relations: Sequence[RelationLike], universe: int
) -> list[int]:
    """Bloem–Gazi–Somenzi lockstep SCC decomposition.

    Forward and backward sets of a pivot grow in lockstep; the first to
    converge is complete, and the other only needs to keep growing while
    its frontier still intersects the converged set (once the frontier
    leaves a forward-closed set it can never re-enter it).  The SCC is
    ``F ∩ B``; recursion proceeds on ``converged ∖ SCC`` and
    ``V ∖ converged`` — ``O(n log n)`` symbolic steps overall."""
    tracer = current_tracer()
    bdd = sym.bdd
    out: list[int] = []
    with tracer.span("scc.lockstep") as span:
        work = [bdd.and_(universe, sym.domain_cur)]
        while work:
            v = work.pop()
            if v == ZERO:
                continue
            v = _trim(sym, relations, v)
            if v == ZERO:
                continue
            tracer.count("scc.lockstep_picks")
            node = _pick_singleton(sym, v)
            f = b = node
            f_front = b_front = node
            while f_front != ZERO and b_front != ZERO:
                f_front = postimage_union(
                    sym, relations, f_front, within=v, subtract=f
                )
                f = bdd.or_(f, f_front)
                b_front = preimage_union(
                    sym, relations, b_front, within=v, subtract=b
                )
                b = bdd.or_(b, b_front)
            if f_front == ZERO:
                conv = f
                while bdd.and_(b_front, conv) != ZERO:
                    b_front = preimage_union(
                        sym, relations, b_front, within=v, subtract=b
                    )
                    b = bdd.or_(b, b_front)
            else:
                conv = b
                while bdd.and_(f_front, conv) != ZERO:
                    f_front = postimage_union(
                        sym, relations, f_front, within=v, subtract=f
                    )
                    f = bdd.or_(f, f_front)
            scc = bdd.and_(f, b)
            if scc != node:  # scc ⊇ node, so inequality ⇔ ≥ 2 states
                out.append(scc)
            work.append(bdd.diff(conv, scc))
            work.append(bdd.diff(v, conv))
        span["n_sccs"] = len(out)
    return out


# ----------------------------------------------------------------------
# Gentilini-Piazza-Policriti
# ----------------------------------------------------------------------


@dataclass
class _Task:
    v: int  # vertex subset still to decompose
    s: int  # skeleton (node set of a path through V)
    n: int  # preferred start node (singleton or empty)


def _skel_forward(
    sym: SymbolicSpace, relations: Sequence[RelationLike], v: int, node: int
) -> tuple[int, int, int]:
    """Forward set of ``node`` in ``v`` plus a skeleton of a longest
    BFS path: returns ``(FW, newS, newN)``."""
    layers: list[int] = []
    fw = ZERO
    layer = sym.bdd.and_(node, v)
    while layer != ZERO:
        layers.append(layer)
        fw = sym.bdd.or_(fw, layer)
        layer = postimage_union(sym, relations, layer, within=v, subtract=fw)
    # walk the onion backwards picking one predecessor per layer
    new_n = _pick_singleton(sym, layers[-1])
    skel = new_n
    current = new_n
    for layer in reversed(layers[:-1]):
        preds = preimage_union(sym, relations, current, within=layer)
        current = _pick_singleton(sym, preds)
        skel = sym.bdd.or_(skel, current)
    return fw, skel, new_n


def gentilini_sccs(
    sym: SymbolicSpace, relations: Sequence[RelationLike], universe: int
) -> list[int]:
    """Gentilini et al.'s SCC decomposition in a linear number of symbolic
    steps (the paper's ``Detect_SCC``).  Returns cyclic SCCs only."""
    tracer = current_tracer()
    out: list[int] = []
    work = [
        _Task(v=sym.bdd.and_(universe, sym.domain_cur), s=ZERO, n=ZERO)
    ]
    with tracer.span("scc.gentilini") as span:
        out.extend(_gentilini_loop(sym, relations, work, tracer))
        span["n_sccs"] = len(out)
    return out


def _gentilini_loop(sym, relations, work, tracer) -> list[int]:
    out: list[int] = []
    while work:
        task = work.pop()
        v = task.v
        if v == ZERO:
            continue
        tracer.count("scc.gentilini_tasks")
        # Sanitise inherited guidance: correctness only needs n ∈ v, and the
        # skeleton invariant (S \ SCC ⊆ V \ FW) can be weakened by the
        # arbitrary pick below, so clip both to v defensively.
        s = sym.bdd.and_(task.s, v)
        n = sym.bdd.and_(task.n, v)
        if n == ZERO:
            n = _pick_singleton(sym, s if s != ZERO else v)
        fw, new_s, new_n = _skel_forward(sym, relations, v, n)
        scc = _scc_of(sym, relations, n, fw)
        if scc != n:  # scc ⊇ n (a singleton), so inequality ⇔ ≥ 2 states
            out.append(scc)
        # recursion 1: the forward set minus the found SCC, guided by the
        # remainder of the freshly built skeleton
        work.append(
            _Task(
                v=sym.bdd.diff(fw, scc),
                s=sym.bdd.diff(new_s, scc),
                n=sym.bdd.diff(new_n, scc),
            )
        )
        # recursion 2: everything outside the forward set, guided by the
        # remainder of the inherited skeleton; the new start node is the
        # skeleton predecessor of the removed segment
        s_rest = sym.bdd.diff(s, scc)
        n2 = ZERO
        removed_on_skel = sym.bdd.and_(scc, s)
        if removed_on_skel != ZERO and s_rest != ZERO:
            n2 = preimage_union(sym, relations, removed_on_skel, within=s_rest)
            if n2 != ZERO:
                n2 = _pick_singleton(sym, n2)
        work.append(_Task(v=sym.bdd.diff(v, fw), s=s_rest, n=n2))
    return out


#: name → implementation; the engine/portfolio configs select by name.
SCC_ALGORITHMS = {
    "xie_beerel": xie_beerel_sccs,
    "gentilini": gentilini_sccs,
    "lockstep": lockstep_sccs,
}


def scc_algorithm_by_name(name: str):
    """Resolve an SCC algorithm name from :data:`SCC_ALGORITHMS`."""
    try:
        return SCC_ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown SCC algorithm {name!r}; known: {sorted(SCC_ALGORITHMS)}"
        ) from None
