"""Symbolic (BDD) engine: encoding, images, SCCs, ranking and synthesis."""

from .encode import RELATION_MODES, SymbolicProtocol, SymbolicSpace
from .engine import (
    SymbolicSynthesisResult,
    SymbolicSynthesisState,
    add_strong_convergence_symbolic,
)
from .image import (
    backward_closure,
    forward_closure,
    postimage,
    postimage_union,
    preimage,
    preimage_union,
    relation_links,
)
from .partition import Partition, make_partition
from .ranking import (
    SymbolicRanking,
    compute_pim_groups_symbolic,
    compute_ranks_symbolic,
)
from .scc import gentilini_sccs, xie_beerel_sccs

__all__ = [
    "RELATION_MODES",
    "Partition",
    "SymbolicProtocol",
    "SymbolicRanking",
    "SymbolicSpace",
    "SymbolicSynthesisResult",
    "SymbolicSynthesisState",
    "add_strong_convergence_symbolic",
    "backward_closure",
    "compute_pim_groups_symbolic",
    "compute_ranks_symbolic",
    "forward_closure",
    "gentilini_sccs",
    "make_partition",
    "postimage",
    "postimage_union",
    "preimage",
    "preimage_union",
    "relation_links",
    "xie_beerel_sccs",
]
