"""Symbolic (BDD) engine: encoding, images, SCCs, ranking and synthesis."""

from .encode import RELATION_MODES, SymbolicProtocol, SymbolicSpace
from .engine import (
    SymbolicSynthesisResult,
    SymbolicSynthesisState,
    add_strong_convergence_symbolic,
)
from .image import (
    backward_closure,
    forward_closure,
    post_and,
    post_diff,
    postimage,
    postimage_union,
    pre_and,
    pre_diff,
    preimage,
    preimage_union,
    relation_links,
)
from .partition import Partition, make_partition
from .ranking import (
    SymbolicRanking,
    compute_pim_groups_symbolic,
    compute_ranks_symbolic,
)
from .scc import (
    SCC_ALGORITHMS,
    SymbolicInternalError,
    gentilini_sccs,
    lockstep_sccs,
    scc_algorithm_by_name,
    xie_beerel_sccs,
)

__all__ = [
    "RELATION_MODES",
    "Partition",
    "SCC_ALGORITHMS",
    "SymbolicInternalError",
    "SymbolicProtocol",
    "SymbolicRanking",
    "SymbolicSpace",
    "SymbolicSynthesisResult",
    "SymbolicSynthesisState",
    "add_strong_convergence_symbolic",
    "backward_closure",
    "compute_pim_groups_symbolic",
    "compute_ranks_symbolic",
    "forward_closure",
    "gentilini_sccs",
    "lockstep_sccs",
    "make_partition",
    "post_and",
    "post_diff",
    "postimage",
    "postimage_union",
    "pre_and",
    "pre_diff",
    "preimage",
    "preimage_union",
    "relation_links",
    "scc_algorithm_by_name",
    "xie_beerel_sccs",
]
