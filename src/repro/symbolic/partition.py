"""Disjunctively partitioned transition relations with implicit frames.

The monolithic transition relation ``T = ∨_j T_j`` conjoins every
per-process relation with a *frame* (``v' = v`` for every unwritten
variable) so that a single ``and_exists`` over all next-state bits computes
an image.  That frame is exactly what makes the relation BDD large: each
``T_j`` mentions every bit of the state, and every image quantifies every
current (or next) bit.

A :class:`Partition` drops the frame.  Its ``rel`` constrains only the
bits process ``j`` actually *reads* (current copy) and *writes* (next
copy); unwritten variables are handled implicitly by never renaming or
quantifying their bits:

``post_j(S) = (∃ w_cur . S ∧ rel)[w' / w]``
    Quantify only the written variables' current bits; the unwritten bits
    of ``S`` survive untouched — they are their own frame.  Rename only
    the written next bits back to current bits.

``pre_j(S) = ∃ w' . rel ∧ S[w' / w]``
    Rename only the written bits of ``S`` to their next copies, conjoin,
    quantify only those next bits.

Because disjunction distributes over ∃, the image of a union relation is
the union of per-partition images — and each per-partition ``and_exists``
quantifies *only the partition's own support*.  This is the maximal "early
quantification" schedule for a disjunctive partitioning: no variable is
ever carried into a conjunction that does not mention it (the conjunctive
analogue is the IWLS-95 quantification-scheduling problem; disjunctive
partitions solve it for free).

The subset renames stay order-preserving because the encoding interleaves
current/next bits and :meth:`repro.bdd.BDD.set_reorder_blocks` sifts those
pairs as units.

:meth:`repro.symbolic.encode.SymbolicProtocol.process_partitions` builds
one partition per process — processes are the natural clusters here
because every group of a process shares its read/write sets (per-group
partitions come from
:meth:`~repro.symbolic.encode.SymbolicProtocol.group_partition`).  The
functions in :mod:`repro.symbolic.image` accept
partitions and plain (full-frame) relation BDDs interchangeably, so the
engine can mix committed partitions with candidate relations and the
benchmarks can pin the partitioned engine against the monolithic baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Partition:
    """One disjunct of a partitioned transition relation (frameless).

    ``rel`` is a BDD over the *read* variables' current bits and the
    *written* variables' next bits of a single process (or cluster); the
    frame of every unwritten variable is implicit.
    """

    #: frameless relation BDD: read bits (current) ∧ written bits (next)
    rel: int
    #: process index this partition belongs to (-1 for merged clusters)
    process: int
    #: current-copy bit variables of the written variables (quantified in post)
    write_cur: tuple[int, ...]
    #: next-copy bit variables of the written variables (quantified in pre)
    write_next: tuple[int, ...]
    #: order-preserving subset rename ``{cur bit: next bit}`` of the write set
    cur_to_next: tuple[tuple[int, int], ...]
    #: inverse rename ``{next bit: cur bit}``
    next_to_cur: tuple[tuple[int, int], ...]

    def merged(self, rel: int) -> "Partition":
        """This partition with ``rel`` as its relation (same write set) —
        used for incremental union updates when a group is committed."""
        return replace(self, rel=rel)


def make_partition(sym, process: int, rel: int, write_vars) -> Partition:
    """Wrap a frameless relation of ``process`` into a :class:`Partition`.

    ``sym`` is the :class:`repro.symbolic.encode.SymbolicSpace`; the write
    bit sets and subset renames are derived from ``write_vars`` (protocol
    variable indices) via the space's interleaved bit layout.
    """
    wcur = tuple(b for v in write_vars for b in sym.cur_levels[v])
    wnext = tuple(b for v in write_vars for b in sym.next_levels[v])
    return Partition(
        rel=rel,
        process=process,
        write_cur=wcur,
        write_next=wnext,
        cur_to_next=tuple(zip(wcur, wnext)),
        next_to_cur=tuple(zip(wnext, wcur)),
    )
