"""Symbolic encoding of protocols: multi-valued variables over BDD bits.

Variable-ordering convention
----------------------------
The log-encoding is owned by the multi-valued layer
(:class:`repro.bdd.mdd.MDD`, constructed with ``pairs=True``): each
protocol variable with domain ``d`` gets ``ceil(log2 d)`` bit pairs;
current and next bits are *interleaved* (``cur, next, cur, next, ...``) in
variable order — the standard ordering that keeps transition-relation BDDs
small and makes the cur<->next renaming order-preserving (a requirement of
:meth:`repro.bdd.manager.BDD.rename`).  The MDD layer declares each
``(cur, next)`` pair as a reorder *block*
(:meth:`repro.bdd.manager.BDD.set_reorder_blocks`), so dynamic sifting
permutes whole pairs and both the full prime/unprime renames and the
per-partition subset renames stay order-preserving under any reached
order.  Value cubes, per-variable domain predicates and ``v' == v`` frame
conditions are served by the MDD layer (direct ladder constructions,
linear in the bit count); this module adds the protocol-level plumbing:
state-set conversions, transition groups, partitions and frames.

Kernel selection
----------------
``SymbolicSpace(..., kernel=...)`` (also reachable through
``SymbolicProtocol(..., kernel=...)``) picks the BDD kernel underneath
the MDD layer: ``"array"`` (default) is the array-native kernel,
``"reference"`` the retained dict implementation used as the
differential-testing oracle; ``None`` reads the ``REPRO_BDD_KERNEL``
environment variable.

Relation representations
------------------------
:class:`SymbolicProtocol` can serve its transition relation in three
shapes, selected by ``relation_mode``:

``"partitioned"`` (default)
    Frameless :class:`~repro.symbolic.partition.Partition`\\ s, one per
    *cluster* of ``cluster_size`` consecutive processes (default 3);
    images rename/quantify only the cluster's written bits (implicit
    frames, maximal early quantification).  The fast path.
``"process"``
    One full-frame relation BDD per process (the pre-partitioning
    behaviour); images quantify every bit.
``"monolithic"``
    A single union relation BDD — the baseline the substrate-scaling
    benchmarks measure against.

All three are accepted interchangeably by :mod:`repro.symbolic.image`.

The :class:`SymbolicSpace` offers the combinators the case studies and the
synthesis engine need (value cubes, variable (in)equalities, frames, group
relations) plus conversions to/from the explicit engine for differential
testing.  Both classes expose ``gc_roots()`` enumerating every node id
they cache, so callers can pass them to
:meth:`repro.bdd.BDD.collect_garbage` between synthesis passes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..bdd import ONE, ZERO
from ..bdd.mdd import MDD, bits_for
from ..protocol.groups import GroupId
from ..protocol.predicate import Predicate
from ..protocol.protocol import Protocol
from ..protocol.state_space import StateSpace
from .partition import Partition, make_partition

#: accepted values of ``SymbolicProtocol.relation_mode``
RELATION_MODES = ("partitioned", "process", "monolithic")


def _bits_for(domain: int) -> int:
    # retained alias: the MDD layer owns the log-encoding width now
    return bits_for(domain)


class SymbolicSpace:
    """BDD encoding of a :class:`StateSpace` (current and next copies)."""

    def __init__(
        self,
        space: StateSpace,
        *,
        auto_reorder: bool = False,
        reorder_threshold: int | None = None,
        kernel: str | None = None,
    ):
        self.space = space
        #: the multi-valued layer owning the log-encoding (bit layout,
        #: value/domain cubes, frame conditions); ``kernel`` selects the
        #: array-native or the reference BDD kernel underneath it (None
        #: reads ``REPRO_BDD_KERNEL``, default ``"array"``)
        self.mdd = MDD(
            [v.domain_size for v in space.variables],
            [v.name for v in space.variables],
            pairs=True,
            kernel=kernel,
        )
        self.n_bits_of: list[int] = list(self.mdd.n_bits)
        self.cur_levels: list[list[int]] = self.mdd.cur_levels
        self.next_levels: list[list[int]] = self.mdd.next_levels
        self.bdd = self.mdd.bdd
        self.all_cur = self.mdd.all_cur
        self.all_next = self.mdd.all_next
        self._cur_to_next = {c: n for c, n in zip(self.all_cur, self.all_next)}
        self._next_to_cur = {n: c for c, n in zip(self.all_cur, self.all_next)}
        # the MDD layer registered the interleaved (cur, next) bit pairs
        # as reorder blocks, so every rename the engine performs stays
        # order-preserving after a reorder
        self.bdd.auto_reorder = auto_reorder
        if reorder_threshold is not None:
            self.bdd.reorder_threshold = reorder_threshold
        #: states whose current-bit encoding is a valid domain valuation
        self.domain_cur = self.mdd.valid()
        self.domain_next = self.mdd.valid(primed=True)
        self._eq_frame_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # atoms
    # ------------------------------------------------------------------
    def levels(self, var_index: int, *, primed: bool = False) -> list[int]:
        return (self.next_levels if primed else self.cur_levels)[var_index]

    def value_cube(self, var_index: int, value: int, *, primed: bool = False) -> int:
        """BDD of ``v == value`` (over current or next bits); msb is bit 0."""
        return self.mdd.value_cube(var_index, value, primed=primed)

    def _domain_constraint(self, var_index: int, *, primed: bool) -> int:
        return self.mdd.domain_cube(var_index, primed=primed)

    def eq_const(self, var_index: int, value: int) -> int:
        return self.value_cube(var_index, value, primed=False)

    def eq_vars(self, i: int, j: int) -> int:
        """``v_i == v_j`` (over current bits)."""
        return self.mdd.eq(i, j)

    def neq_vars(self, i: int, j: int) -> int:
        return self.bdd.diff(self.domain_cur, self.eq_vars(i, j))

    def relation(self, i: int, j: int, holds) -> int:
        """``holds(v_i, v_j)`` as a BDD, enumerated over the two domains."""
        di = self.space.variables[i].domain_size
        dj = self.space.variables[j].domain_size
        return self.bdd.or_all(
            self.bdd.and_(self.eq_const(i, a), self.eq_const(j, b))
            for a in range(di)
            for b in range(dj)
            if holds(a, b)
        )

    def unchanged(self, var_index: int) -> int:
        """Frame condition ``v' == v`` for one variable.

        Delegates to the MDD layer's bit-equality ladder (linear in the
        bit count; out-of-domain pairs excluded — see
        :meth:`repro.bdd.mdd.MDD.unchanged`)."""
        return self.mdd.unchanged(var_index)

    def state_cube(self, values: Sequence[int], *, primed: bool = False) -> int:
        return self.bdd.and_all(
            self.value_cube(i, v, primed=primed) for i, v in enumerate(values)
        )

    # ------------------------------------------------------------------
    # state-set plumbing
    # ------------------------------------------------------------------
    def prime(self, f: int) -> int:
        """Rename a current-bits BDD to next bits."""
        return self.bdd.rename(f, self._cur_to_next)

    def unprime(self, f: int) -> int:
        """Rename a next-bits BDD to current bits."""
        return self.bdd.rename(f, self._next_to_cur)

    def count_states(self, f: int) -> int:
        """Number of states in a current-bits state-set BDD."""
        g = self.bdd.and_(f, self.domain_cur)
        return self.bdd.count_sat(g) >> len(self.all_next)

    def is_empty(self, f: int) -> bool:
        return self.bdd.and_(f, self.domain_cur) == ZERO

    def pick_cube(self, f: int, *, assume_valid: bool = False) -> int:
        """One member state of a state-set BDD as a full current-bits cube
        (``ZERO`` when empty).  Unlike :meth:`pick_state` this never goes
        through the explicit state index, so it works on spaces far beyond
        the explicit limit (don't-care bits default to 0, which is always
        a valid domain value).

        ``assume_valid=True`` skips the ``∧ domain_cur`` guard — correct
        exactly when ``f ⊆ domain_cur`` already holds, which is true of
        every set the SCC/ranking fixpoints manipulate (they start from
        ``∧ domain_cur`` and only shrink).  The guard was the single
        hottest BDD operation of the SCC workloads."""
        g = f if assume_valid else self.bdd.and_(f, self.domain_cur)
        return self.bdd.pick_cube_over(g, self.all_cur)

    def pick_state(self, f: int) -> int | None:
        """Any member state of a state-set BDD, as an explicit state index."""
        g = self.bdd.and_(f, self.domain_cur)
        model = self.bdd.pick(g)
        if model is None:
            return None
        values = []
        for i in range(self.space.n_vars):
            bits = self.cur_levels[i]
            n = len(bits)
            value = 0
            for b in range(n):
                value |= int(model.get(bits[b], False)) << (n - 1 - b)
            values.append(value)
        return self.space.encode(values)

    # ------------------------------------------------------------------
    # explicit <-> symbolic conversion (small spaces; differential tests)
    # ------------------------------------------------------------------
    def from_mask(self, mask: np.ndarray) -> int:
        """Encode an explicit boolean mask as a state-set BDD.

        Linear in the state space — use only for testing / small spaces.
        """
        f = ZERO
        for s in np.flatnonzero(mask):
            f = self.bdd.or_(f, self.state_cube(self.space.decode(int(s))))
        return f

    def from_predicate(self, predicate: Predicate) -> int:
        return self.from_mask(predicate.mask)

    def to_mask(self, f: int) -> np.ndarray:
        """Decode a state-set BDD into an explicit boolean mask."""
        mask = np.zeros(self.space.size, dtype=bool)
        g = self.bdd.and_(f, self.domain_cur)
        for partial in self.bdd.iter_sat(g):
            free_vars: list[tuple[int, int]] = []  # (var, free-bit-count)
            base_values = []
            for i in range(self.space.n_vars):
                bits = self.cur_levels[i]
                base_values.append(
                    [partial.get(b) for b in bits]
                )
            # expand don't-care current bits; next bits are irrelevant
            self._expand(mask, base_values, 0, [0] * self.space.n_vars)
        return mask

    def _expand(self, mask, base_values, var, acc):
        if var == self.space.n_vars:
            mask[self.space.encode(acc)] = True
            return
        bits = base_values[var]
        n = len(bits)
        domain = self.space.variables[var].domain_size

        def rec(b, value):
            if b == n:
                if value < domain:
                    acc[var] = value
                    self._expand(mask, base_values, var + 1, acc)
                return
            known = bits[b]
            for bit in ((known,) if known is not None else (False, True)):
                rec(b + 1, value | (int(bit) << (n - 1 - b)))

        rec(0, 0)

    # ------------------------------------------------------------------
    # transition groups
    # ------------------------------------------------------------------
    def frame(self, written_vars: Iterable[int]) -> int:
        """``AND_{v not in written} (v' == v)`` — cached per write-set."""
        key = tuple(sorted(written_vars))
        cached = self._eq_frame_cache.get(("frame", key))
        if cached is None:
            cached = self.bdd.and_all(
                self.unchanged(v)
                for v in range(self.space.n_vars)
                if v not in key
            )
            self._eq_frame_cache[("frame", key)] = cached
        return cached

    def frame_within(
        self, written_vars: Iterable[int], among_vars: Iterable[int]
    ) -> int:
        """``AND_{v in among \\ written} (v' == v)`` — the *partial* frame
        that lifts one process's frameless relation into a cluster whose
        write set is ``among`` (cached per pair of sets)."""
        wkey = tuple(sorted(written_vars))
        akey = tuple(sorted(among_vars))
        key = ("frame_within", wkey, akey)
        cached = self._eq_frame_cache.get(key)
        if cached is None:
            cached = self.bdd.and_all(
                self.unchanged(v) for v in akey if v not in wkey
            )
            self._eq_frame_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # garbage-collection roots
    # ------------------------------------------------------------------
    def gc_roots(self) -> Iterator[int]:
        """Every node id this object caches — pass to ``collect_garbage``."""
        yield self.domain_cur
        yield self.domain_next
        yield from self.mdd.gc_roots()
        yield from self._eq_frame_cache.values()


class SymbolicProtocol:
    """Symbolic view of a protocol: per-group and per-process relations.

    ``relation_mode`` picks the representation served by
    :meth:`relations_for` (see the module docstring): ``"partitioned"``
    frameless clustered partitions, ``"process"`` full-frame per-process
    relations, or ``"monolithic"`` a single union relation.

    ``cluster_size`` tunes the partitioned mode: consecutive processes are
    merged ``cluster_size`` at a time into one partition each (partial
    frames re-introduce ``v' = v`` only for the *other* cluster members'
    write variables).  ``1`` keeps one partition per process; ``>=
    n_processes`` degenerates to a single frameless union.  The default of
    3 balances per-image traversal count (which scales with the number of
    partitions) against partition BDD size (which grows with the frame) —
    see ``benchmarks/SUBSTRATE_SCALING.md`` for measurements.
    """

    def __init__(
        self,
        protocol: Protocol,
        sym: SymbolicSpace | None = None,
        *,
        relation_mode: str = "partitioned",
        cluster_size: int = 3,
        kernel: str | None = None,
    ):
        if relation_mode not in RELATION_MODES:
            raise ValueError(
                f"relation_mode must be one of {RELATION_MODES}, "
                f"got {relation_mode!r}"
            )
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        self.protocol = protocol
        self.sym = (
            sym
            if sym is not None
            else SymbolicSpace(protocol.space, kernel=kernel)
        )
        self.relation_mode = relation_mode
        self.cluster_size = cluster_size
        k = protocol.n_processes
        #: consecutive process runs merged into one partition each
        self.clusters: tuple[tuple[int, ...], ...] = tuple(
            tuple(range(lo, min(lo + cluster_size, k)))
            for lo in range(0, k, cluster_size)
        )
        self._cluster_of = [
            ci for ci, procs in enumerate(self.clusters) for _ in procs
        ]
        self._cluster_writes = [
            sorted({v for j in procs for v in protocol.tables[j].write_vars})
            for procs in self.clusters
        ]
        self._group_cache: dict[GroupId, int] = {}
        self._partition_cache: dict[GroupId, Partition] = {}
        self._frames = [
            self.sym.frame(protocol.topology[j].writes)
            for j in range(protocol.n_processes)
        ]
        self._rcubes: list[dict[int, int]] = [
            {} for _ in range(protocol.n_processes)
        ]

    def rcube(self, j: int, rcode: int) -> int:
        """Cube of the readable valuation ``rcode`` of process ``j`` (cur bits)."""
        cached = self._rcubes[j].get(rcode)
        if cached is None:
            table = self.protocol.tables[j]
            values = table.values_of_rcode(rcode)
            cached = self.sym.bdd.and_all(
                self.sym.value_cube(v, val)
                for v, val in zip(table.read_vars, values)
            )
            self._rcubes[j][rcode] = cached
        return cached

    def _wcube(self, gid: GroupId) -> int:
        """Next-bit cube of the written valuation of one group."""
        j, _rcode, wcode = gid
        table = self.protocol.tables[j]
        wvals = table.values_of_wcode(wcode)
        return self.sym.bdd.and_all(
            self.sym.value_cube(v, val, primed=True)
            for v, val in zip(table.write_vars, wvals)
        )

    def group_relation(self, gid: GroupId) -> int:
        """Full-frame transition-relation BDD of one group."""
        cached = self._group_cache.get(gid)
        if cached is None:
            j, rcode, _wcode = gid
            cached = self.sym.bdd.and_all(
                [self.rcube(j, rcode), self._wcube(gid), self._frames[j]]
            )
            self._group_cache[gid] = cached
        return cached

    def group_partition(self, gid: GroupId) -> Partition:
        """Frameless :class:`Partition` of one group (no frame conjunct)."""
        cached = self._partition_cache.get(gid)
        if cached is None:
            j, rcode, _wcode = gid
            rel = self.sym.bdd.and_(self.rcube(j, rcode), self._wcube(gid))
            cached = make_partition(
                self.sym, j, rel, self.protocol.tables[j].write_vars
            )
            self._partition_cache[gid] = cached
        return cached

    def relation_of(self, group_ids: Iterable[GroupId]) -> int:
        """Union (full-frame) relation of a collection of groups."""
        return self.sym.bdd.or_all(self.group_relation(g) for g in group_ids)

    def partition_of(self, j: int, group_ids: Iterable[GroupId]) -> Partition:
        """Union frameless partition of groups of one process ``j``."""
        rel = self.sym.bdd.or_all(
            self.group_partition(g).rel for g in group_ids
        )
        return make_partition(
            self.sym, j, rel, self.protocol.tables[j].write_vars
        )

    def process_relations(
        self, groups: Sequence[Iterable[tuple[int, int]]]
    ) -> list[int]:
        """One full-frame union relation per process."""
        return [
            self.relation_of((j, r, w) for (r, w) in gs)
            for j, gs in enumerate(groups)
        ]

    def process_partitions(
        self, groups: Sequence[Iterable[tuple[int, int]]]
    ) -> list[Partition]:
        """One frameless :class:`Partition` per process."""
        return [
            self.partition_of(j, ((j, r, w) for (r, w) in gs))
            for j, gs in enumerate(groups)
        ]

    def cluster_index(self, j: int) -> int:
        """Index into :meth:`clustered_partitions` of process ``j``'s
        cluster."""
        return self._cluster_of[j]

    def cluster_lift(self, j: int, ci: int) -> int:
        """Partial frame lifting process ``j``'s frameless relation into
        cluster ``ci`` (``v' = v`` for the other members' write vars)."""
        return self.sym.frame_within(
            self.protocol.tables[j].write_vars, self._cluster_writes[ci]
        )

    def clustered_partitions(
        self, groups: Sequence[Iterable[tuple[int, int]]]
    ) -> list[Partition]:
        """One frameless :class:`Partition` per *cluster* of
        :attr:`cluster_size` consecutive processes.

        Each member process's frameless relation is conjoined with the
        partial frame over the cluster's other write variables, so every
        disjunct constrains the same next-bit set and the frameless union
        stays well-formed (see :mod:`repro.symbolic.partition`).
        """
        out = []
        for ci, procs in enumerate(self.clusters):
            rel = self.sym.bdd.or_all(
                self.sym.bdd.and_(
                    self.partition_of(
                        j, ((j, r, w) for (r, w) in groups[j])
                    ).rel,
                    self.cluster_lift(j, ci),
                )
                for j in procs
            )
            process = procs[0] if len(procs) == 1 else -1
            out.append(
                make_partition(self.sym, process, rel, self._cluster_writes[ci])
            )
        return out

    def relations_for(
        self, groups: Sequence[Iterable[tuple[int, int]]]
    ) -> list:
        """The transition relation in the representation selected by
        :attr:`relation_mode` (see the module docstring).

        ``"monolithic"`` returns a single-element list; the image
        functions in :mod:`repro.symbolic.image` accept all three shapes.
        """
        if self.relation_mode == "partitioned":
            return self.clustered_partitions(groups)
        rels = self.process_relations(groups)
        if self.relation_mode == "monolithic":
            return [self.sym.bdd.or_all(rels)]
        return rels

    def candidate_relation(self, gid: GroupId):
        """One group's relation in the representation of
        :attr:`relation_mode` — what cycle resolution appends as a
        candidate disjunct."""
        if self.relation_mode == "partitioned":
            return self.group_partition(gid)
        return self.group_relation(gid)

    # ------------------------------------------------------------------
    # garbage-collection roots
    # ------------------------------------------------------------------
    def gc_roots(self) -> Iterator[int]:
        """Every node id this object caches (including the underlying
        :class:`SymbolicSpace`'s) — pass to ``collect_garbage``."""
        yield from self.sym.gc_roots()
        yield from self._group_cache.values()
        for part in self._partition_cache.values():
            yield part.rel
        yield from self._frames
        for rc in self._rcubes:
            yield from rc.values()
