"""Symbolic ``ComputeRanks`` — backward BFS over BDD state sets.

The symbolic twin of :mod:`repro.core.ranking`: same ``p_im`` construction
(group bookkeeping stays explicit — candidate group *sets* are tiny even
when the state space is astronomically large), state sets become BDDs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bdd import ZERO
from ..trace.tracer import NullTracer, Tracer, current_tracer
from .encode import SymbolicProtocol
from .image import preimage_union


def compute_pim_groups_symbolic(
    sp: SymbolicProtocol, invariant: int
) -> list[set[tuple[int, int]]]:
    """Groups of ``p_im``: δp plus every candidate group whose source
    cylinder misses ``I`` (the symbolic twin of ``compute_pim_groups``)."""
    protocol = sp.protocol
    bdd = sp.sym.bdd
    pim: list[set[tuple[int, int]]] = []
    for j, table in enumerate(protocol.tables):
        groups = set(protocol.groups[j])
        for rcode in range(table.n_rvals):
            if bdd.and_(sp.rcube(j, rcode), invariant) != ZERO:
                continue
            self_w = int(table.self_wcode[rcode])
            for wcode in range(table.n_wvals):
                if wcode != self_w:
                    groups.add((rcode, wcode))
        pim.append(groups)
    return pim


@dataclass
class SymbolicRanking:
    """Rank predicates as BDDs: ``ranks[i]`` is Rank[i] (``ranks[0]`` = I)."""

    sp: SymbolicProtocol
    invariant: int
    ranks: list[int]
    unreachable: int
    pim_groups: list[set[tuple[int, int]]]

    @property
    def max_rank(self) -> int:
        return len(self.ranks) - 1

    def admits_stabilization(self) -> bool:
        return self.unreachable == ZERO

    def n_unreachable(self) -> int:
        return self.sp.sym.count_states(self.unreachable)

    def rank_sizes(self) -> list[int]:
        return [self.sp.sym.count_states(r) for r in self.ranks]


def compute_ranks_symbolic(
    sp: SymbolicProtocol,
    invariant: int,
    *,
    tracer: Tracer | NullTracer | None = None,
) -> SymbolicRanking:
    """Backward BFS from ``I`` over the per-process ``p_im`` relations.

    ``tracer`` defaults to the process-wide current tracer; a traced run
    records one ``symbolic.rank.backward_bfs`` span covering the fixpoint.
    """
    tracer = tracer if tracer is not None else current_tracer()
    sym = sp.sym
    pim = compute_pim_groups_symbolic(sp, invariant)
    relations = sp.relations_for(pim)
    tracer.counter_set("symbolic.partition_count", len(relations))
    invariant = sym.bdd.and_(invariant, sym.domain_cur)
    ranks = [invariant]
    explored = invariant
    with tracer.span(
        "symbolic.rank.backward_bfs", partition_count=len(relations)
    ) as span:
        while True:
            # one fused multi-relation sweep per rank frontier: every
            # partition cluster, the domain window and the explored-set
            # subtraction run in a single kernel call
            frontier = preimage_union(
                sym,
                relations,
                ranks[-1],
                within=sym.domain_cur,
                subtract=explored,
            )
            if frontier == ZERO:
                break
            ranks.append(frontier)
            explored = sym.bdd.or_(explored, frontier)
        span["max_rank"] = len(ranks) - 1
    unreachable = sym.bdd.diff(sym.domain_cur, explored)
    return SymbolicRanking(
        sp=sp,
        invariant=invariant,
        ranks=ranks,
        unreachable=unreachable,
        pim_groups=pim,
    )
