"""Symbolic image computations (relational products).

Two relation representations are accepted everywhere, and may be mixed
within one sequence:

* a plain ``int`` — a *full-frame* relation BDD over all current and next
  bits (the monolithic/legacy representation): images quantify every bit
  of one copy and rename every bit of the other;
* a :class:`repro.symbolic.partition.Partition` — a *frameless* per-process
  disjunct: images rename and quantify **only the written variables'
  bits**, the implicit-frame optimisation that makes partitioned image
  computation cheap (see :mod:`repro.symbolic.partition` for why this is
  the maximal early-quantification schedule for a disjunctive
  partitioning).

``preimage_union``/``postimage_union`` compute the image under the union
relation ``∨ T_j`` as the union of per-partition images — disjunction
distributes over ∃, so no cross-partition conjunction is ever built.

All partition clusters of one union image are handed to the kernel in a
*single* fused call (``rel_product_pre_many``/``rel_product_post_many``)
that sweeps every cluster through one two-phase BFS, and the callers'
ubiquitous ``and_(pre(S), V)`` / ``diff(pre(S), S)`` post-processing is
fused into that same sweep via the ``within``/``subtract`` keywords (and
the :func:`pre_and`/:func:`pre_diff`/:func:`post_and`/:func:`post_diff`
shorthands), so the unconstrained union is never materialised.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..bdd import ZERO
from .encode import SymbolicSpace
from .partition import Partition

#: one disjunct of a transition relation: full-frame BDD or frameless partition
RelationLike = Union[int, Partition]


def preimage(sym: SymbolicSpace, relation: RelationLike, states: int) -> int:
    """``pre(T, S) = ∃v'. T(v, v') ∧ S(v')`` — predecessors of ``states``."""
    if states == ZERO:
        return ZERO
    if isinstance(relation, Partition):
        if relation.rel == ZERO:
            return ZERO
        return sym.bdd.rel_product_pre(
            relation.rel, states, relation.cur_to_next
        )
    if relation == ZERO:
        return ZERO
    primed = sym.prime(states)
    return sym.bdd.and_exists(relation, primed, sym.all_next)


def postimage(sym: SymbolicSpace, relation: RelationLike, states: int) -> int:
    """``post(T, S) = (∃v. T(v, v') ∧ S(v))[v'/v]`` — successors of ``states``."""
    if states == ZERO:
        return ZERO
    if isinstance(relation, Partition):
        if relation.rel == ZERO:
            return ZERO
        return sym.bdd.rel_product_post(
            relation.rel, states, relation.cur_to_next
        )
    if relation == ZERO:
        return ZERO
    shifted = sym.bdd.and_exists(relation, states, sym.all_cur)
    return sym.unprime(shifted)


def _window(bdd, f: int, within: int | None, subtract: int | None) -> int:
    """Apply the ``∧ within`` / ``∖ subtract`` trim to one image part."""
    if within is not None:
        f = bdd.and_(f, within)
    if subtract is not None and f != ZERO:
        f = bdd.diff(f, subtract)
    return f


def preimage_union(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    states: int,
    *,
    within: int | None = None,
    subtract: int | None = None,
) -> int:
    """Predecessors under a disjunctively partitioned relation.

    Computes ``(∨_j pre(T_j, states)) ∧ within ∖ subtract`` with every
    partition cluster fused into one kernel sweep and the window applied
    per disjunct — the unconstrained union never exists as a BDD.
    """
    if states == ZERO:
        return ZERO
    parts = [
        r for r in relations if isinstance(r, Partition) and r.rel != ZERO
    ]
    full = [
        r for r in relations if not isinstance(r, Partition) and r != ZERO
    ]
    out = ZERO
    if parts:
        out = sym.bdd.rel_product_pre_many(
            [(p.rel, p.cur_to_next) for p in parts],
            states,
            constrain=within,
            subtract=subtract,
        )
    if full:
        primed = sym.prime(states)
        for rel in full:
            img = sym.bdd.and_exists(rel, primed, sym.all_next)
            out = sym.bdd.or_(out, _window(sym.bdd, img, within, subtract))
    return out


def postimage_union(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    states: int,
    *,
    within: int | None = None,
    subtract: int | None = None,
) -> int:
    """Successors under a disjunctively partitioned relation (the
    post twin of :func:`preimage_union`, same fusion semantics)."""
    if states == ZERO:
        return ZERO
    parts = [
        r for r in relations if isinstance(r, Partition) and r.rel != ZERO
    ]
    full = [
        r for r in relations if not isinstance(r, Partition) and r != ZERO
    ]
    out = ZERO
    if parts:
        out = sym.bdd.rel_product_post_many(
            [(p.rel, p.cur_to_next) for p in parts],
            states,
            constrain=within,
            subtract=subtract,
        )
    for rel in full:
        img = postimage(sym, rel, states)
        out = sym.bdd.or_(out, _window(sym.bdd, img, within, subtract))
    return out


def pre_and(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    states: int,
    window: int,
) -> int:
    """``pre(∨T, states) ∧ window`` without the intermediate preimage."""
    return preimage_union(sym, relations, states, within=window)


def pre_diff(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    states: int,
    minus: int,
) -> int:
    """``pre(∨T, states) ∖ minus`` without the intermediate preimage."""
    return preimage_union(sym, relations, states, subtract=minus)


def post_and(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    states: int,
    window: int,
) -> int:
    """``post(∨T, states) ∧ window`` without the intermediate postimage."""
    return postimage_union(sym, relations, states, within=window)


def post_diff(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    states: int,
    minus: int,
) -> int:
    """``post(∨T, states) ∖ minus`` without the intermediate postimage."""
    return postimage_union(sym, relations, states, subtract=minus)


def relation_links(
    sym: SymbolicSpace, relation: RelationLike, sources: int, targets: int
) -> bool:
    """Does ``relation`` contain a transition from ``sources`` into
    ``targets``?  (The SCC-membership test of cycle resolution.)"""
    bdd = sym.bdd
    if sources == ZERO or targets == ZERO:
        return False
    if isinstance(relation, Partition):
        if relation.rel == ZERO:
            return False
        hit = bdd.and_(relation.rel, sources)
        if hit == ZERO:
            return False
        shifted = bdd.rename(targets, dict(relation.cur_to_next))
        return bdd.and_(hit, shifted) != ZERO
    return (
        relation != ZERO
        and bdd.and_(bdd.and_(relation, sources), sym.prime(targets)) != ZERO
    )


def forward_closure(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    start: int,
    within: int | None = None,
) -> int:
    """Least fixpoint: all states reachable from ``start`` (within ``within``)."""
    reached = start if within is None else sym.bdd.and_(start, within)
    frontier = reached
    while frontier != ZERO:
        new = postimage_union(
            sym, relations, frontier, within=within, subtract=reached
        )
        reached = sym.bdd.or_(reached, new)
        frontier = new
    return reached


def backward_closure(
    sym: SymbolicSpace,
    relations: Sequence[RelationLike],
    start: int,
    within: int | None = None,
) -> int:
    """Least fixpoint: all states that can reach ``start`` (within ``within``)."""
    reached = start if within is None else sym.bdd.and_(start, within)
    frontier = reached
    while frontier != ZERO:
        new = preimage_union(
            sym, relations, frontier, within=within, subtract=reached
        )
        reached = sym.bdd.or_(reached, new)
        frontier = new
    return reached
