"""Symbolic image computations (relational products)."""

from __future__ import annotations

from typing import Sequence

from ..bdd import ZERO
from .encode import SymbolicSpace


def preimage(sym: SymbolicSpace, relation: int, states: int) -> int:
    """``pre(T, S) = ∃v'. T(v, v') ∧ S(v')`` — predecessors of ``states``."""
    primed = sym.prime(states)
    return sym.bdd.and_exists(relation, primed, sym.all_next)


def postimage(sym: SymbolicSpace, relation: int, states: int) -> int:
    """``post(T, S) = (∃v. T(v, v') ∧ S(v))[v'/v]`` — successors of ``states``."""
    shifted = sym.bdd.and_exists(relation, states, sym.all_cur)
    return sym.unprime(shifted)


def preimage_union(
    sym: SymbolicSpace, relations: Sequence[int], states: int
) -> int:
    """Predecessors under a disjunctively partitioned relation."""
    primed = sym.prime(states)
    out = ZERO
    for rel in relations:
        out = sym.bdd.or_(
            out, sym.bdd.and_exists(rel, primed, sym.all_next)
        )
    return out


def postimage_union(
    sym: SymbolicSpace, relations: Sequence[int], states: int
) -> int:
    out = ZERO
    for rel in relations:
        out = sym.bdd.or_(
            out, sym.unprime(sym.bdd.and_exists(rel, states, sym.all_cur))
        )
    return out


def forward_closure(
    sym: SymbolicSpace,
    relations: Sequence[int],
    start: int,
    within: int | None = None,
) -> int:
    """Least fixpoint: all states reachable from ``start`` (within ``within``)."""
    reached = start if within is None else sym.bdd.and_(start, within)
    frontier = reached
    while frontier != ZERO:
        new = postimage_union(sym, relations, frontier)
        if within is not None:
            new = sym.bdd.and_(new, within)
        new = sym.bdd.diff(new, reached)
        reached = sym.bdd.or_(reached, new)
        frontier = new
    return reached


def backward_closure(
    sym: SymbolicSpace,
    relations: Sequence[int],
    start: int,
    within: int | None = None,
) -> int:
    """Least fixpoint: all states that can reach ``start`` (within ``within``)."""
    reached = start if within is None else sym.bdd.and_(start, within)
    frontier = reached
    while frontier != ZERO:
        new = preimage_union(sym, relations, frontier)
        if within is not None:
            new = sym.bdd.and_(new, within)
        new = sym.bdd.diff(new, reached)
        reached = sym.bdd.or_(reached, new)
        frontier = new
    return reached
