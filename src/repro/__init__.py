"""repro — a reproduction of "A Lightweight Method for Automated Design of
Convergence" (Ebnenasir & Farahat, IPDPS 2011): the STSyn convergence
synthesizer, its protocol model, verification engine, BDD substrate and
case-study library.

Quickstart::

    from repro import token_ring, add_strong_convergence, check_solution

    protocol, invariant = token_ring(k=4, domain=3)
    result = add_strong_convergence(protocol, invariant)
    assert result.success
    assert check_solution(protocol, result.protocol, invariant).ok
"""

from .cert import (
    CertificateError,
    CertificateViolation,
    ConvergenceCertificate,
    check_certificate,
    check_certificate_symbolic,
    emit_certificate,
    validate_certificate,
)
from .core import (
    HeuristicFailure,
    PortfolioResult,
    HeuristicOptions,
    NoStabilizingVersionError,
    NotClosedError,
    RankingResult,
    SynthesisError,
    SynthesisResult,
    UnresolvableCycleError,
    add_strong_convergence,
    compute_ranks,
    paper_default_schedule,
    synthesize,
    synthesize_weak,
)
from .metrics import SynthesisStats
from .trace import NULL_TRACER, Tracer, current_tracer, trace_report, use_tracer
from .protocol import (
    Action,
    Predicate,
    ProcessSpec,
    Protocol,
    StateSpace,
    Topology,
    Variable,
    make_variables,
    ring_topology,
)
from .protocols import (
    coloring,
    dijkstra_stabilizing_token_ring,
    gouda_acharya_matching,
    matching,
    token_ring,
    two_ring,
)
from .verify import (
    analyze_stabilization,
    check_solution,
    strongly_converges,
    weakly_converges,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "CertificateError",
    "CertificateViolation",
    "ConvergenceCertificate",
    "HeuristicFailure",
    "NULL_TRACER",
    "Tracer",
    "HeuristicOptions",
    "NoStabilizingVersionError",
    "NotClosedError",
    "Predicate",
    "ProcessSpec",
    "Protocol",
    "PortfolioResult",
    "RankingResult",
    "StateSpace",
    "SynthesisError",
    "SynthesisResult",
    "SynthesisStats",
    "Topology",
    "UnresolvableCycleError",
    "Variable",
    "__version__",
    "add_strong_convergence",
    "analyze_stabilization",
    "check_certificate",
    "check_certificate_symbolic",
    "check_solution",
    "coloring",
    "emit_certificate",
    "compute_ranks",
    "current_tracer",
    "dijkstra_stabilizing_token_ring",
    "gouda_acharya_matching",
    "make_variables",
    "matching",
    "paper_default_schedule",
    "ring_topology",
    "strongly_converges",
    "synthesize",
    "synthesize_weak",
    "token_ring",
    "trace_report",
    "two_ring",
    "use_tracer",
    "validate_certificate",
    "weakly_converges",
]
