"""Structured tracing and counters (spans, JSONL sinks, reports).

See :mod:`repro.trace.tracer` for the event schema and
:mod:`repro.trace.report` for aggregation; README's "Observability"
section documents the end-to-end workflow.
"""

from .report import (
    SpanAgg,
    TraceSummary,
    iter_events,
    merge_traces,
    render_report,
    summarize,
    trace_report,
)
from .tail import TailBuffer, follow_jsonl, format_record, parse_record
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    record_bdd_counters,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanAgg",
    "TailBuffer",
    "TraceSummary",
    "Tracer",
    "current_tracer",
    "follow_jsonl",
    "format_record",
    "iter_events",
    "merge_traces",
    "parse_record",
    "record_bdd_counters",
    "render_report",
    "summarize",
    "trace_report",
    "use_tracer",
]
