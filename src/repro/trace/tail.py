"""Live tailing of line-flushed JSONL trace files.

Every :class:`~repro.trace.tracer.Tracer` flushes each record as one
``\\n``-terminated line, so a trace being written by a running synthesis
job is readable concurrently — the only hazard is the *partial last line*
a reader can observe between the writer's ``write`` and the terminating
newline (or after a writer died mid-line).  Both live consumers — the
``stsyn serve`` streaming endpoint and ``stsyn trace-report --follow`` —
share the guard here:

:class:`TailBuffer`
    incremental splitter that only ever surfaces *complete* lines;
    whatever trails the last newline stays buffered until more bytes
    arrive (and is optionally flushed at end-of-stream).

:func:`follow_jsonl`
    blocking generator over a growing file: yields each parsed JSON
    record as it lands, polls for growth, survives the file not existing
    yet, and stops when ``stop`` fires or the file has been idle past
    ``idle_timeout`` with ``stop_at_idle`` set.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Iterator


class TailBuffer:
    """Byte-feed line splitter that never surfaces a torn line.

    ``feed(data)`` returns the decoded *complete* lines contained in the
    buffer so far; bytes after the last newline are retained.  A record
    that never gets its newline (writer killed mid-``write``) can be
    recovered with ``flush()`` once the stream is known to be finished —
    callers that cannot know (live streaming) simply drop it, which is
    exactly the "guard against partial last lines" contract.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[str]:
        self._buf.extend(data)
        if b"\n" not in self._buf:
            return []
        complete, _, rest = bytes(self._buf).rpartition(b"\n")
        self._buf = bytearray(rest)
        return [
            line.decode("utf-8", errors="replace")
            for line in complete.split(b"\n")
            if line.strip()
        ]

    def flush(self) -> str | None:
        """The trailing unterminated fragment, if any (buffer is cleared)."""
        rest = bytes(self._buf).decode("utf-8", errors="replace").strip()
        self._buf = bytearray()
        return rest or None

    @property
    def pending(self) -> int:
        """Bytes held back waiting for their newline."""
        return len(self._buf)


def parse_record(line: str) -> dict | None:
    """One JSONL line → record dict, or ``None`` for junk.

    Malformed lines (a writer killed mid-line that *did* get flushed, disk
    corruption) are skipped, mirroring
    :func:`repro.trace.report.iter_events`.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


def follow_jsonl(
    path: str | os.PathLike,
    *,
    poll_interval: float = 0.2,
    stop: Callable[[], bool] | None = None,
    idle_timeout: float | None = None,
    wait_for_file: bool = True,
) -> Iterator[dict]:
    """Yield records of a growing JSONL file as the writer appends them.

    Polls ``path`` every ``poll_interval`` seconds.  Termination:

    * ``stop()`` returning True ends the follow at the next poll — after a
      final drain, so records written just before the stop are delivered;
    * with ``idle_timeout`` set, the follow ends once the file has grown
      nothing for that long (a finished writer leaves no other signal);
    * a file that disappears mid-follow (rotated away) ends the follow.

    A file that does not exist yet is waited for (``wait_for_file=True``)
    rather than an error — the job may not have opened its trace yet.
    """
    path = os.fspath(path)
    buffer = TailBuffer()
    position = 0
    last_growth = time.monotonic()
    handle = None
    try:
        while True:
            stopping = stop is not None and stop()
            if handle is None:
                try:
                    handle = open(path, "rb")
                except OSError:
                    if stopping or not wait_for_file:
                        return
                    if (
                        idle_timeout is not None
                        and time.monotonic() - last_growth > idle_timeout
                    ):
                        return
                    time.sleep(poll_interval)
                    continue
            handle.seek(position)
            data = handle.read()
            if data:
                position += len(data)
                last_growth = time.monotonic()
                for line in buffer.feed(data):
                    record = parse_record(line)
                    if record is not None:
                        yield record
            elif stopping:
                # final drain done: a terminated line race lost to the
                # stop signal would have been read above
                return
            elif not os.path.exists(path):
                return
            elif (
                idle_timeout is not None
                and time.monotonic() - last_growth > idle_timeout
            ):
                return
            else:
                time.sleep(poll_interval)
            if stopping and not data:
                return
    finally:
        if handle is not None:
            handle.close()


def format_record(record: dict) -> str:
    """One human-readable line per trace record (``trace-report --follow``)."""
    kind = record.get("type")
    if kind == "span":
        dur_ms = 1000.0 * float(record.get("dur", 0.0))
        return f"[span ] {record.get('name')}  {dur_ms:.1f} ms"
    if kind == "event":
        attrs = record.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        return f"[event] {record.get('name')}" + (f"  {detail}" if detail else "")
    if kind == "counters":
        values = record.get("values") or {}
        return f"[count] {len(values)} counter(s): " + " ".join(
            f"{k}={v}" for k, v in sorted(values.items())
        )
    if kind == "meta":
        ident = {
            k: v for k, v in record.items() if k not in ("type", "t0")
        }
        detail = " ".join(f"{k}={v}" for k, v in ident.items())
        return f"[meta ] {detail}"
    return f"[?    ] {json.dumps(record, default=str)}"
