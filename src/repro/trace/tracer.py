"""Structured tracing: timestamped spans, monotonic counters, JSONL sinks.

The observability substrate for every "measure before you optimize" PR: a
:class:`Tracer` records

* **spans** — named, nested wall-time intervals (``span("rank.backward_bfs")``)
  emitted as one JSON line each when the span closes;
* **counters** — monotonic integers (BDD ``ite`` calls, memo hits, deadlocks
  resolved per pass, ...) accumulated in-process and flushed as cumulative
  snapshots;
* **events** — point-in-time facts with arbitrary attributes.

Zero dependencies beyond the standard library.  The default tracer is the
module-level :data:`NULL_TRACER`, whose every operation is a no-op, so
un-traced hot paths pay only an attribute check.  Every emitted line is
flushed immediately: a worker process killed mid-run (the parallel
portfolio cancels losers) still leaves a readable partial trace.

Event schema (one JSON object per line):

``{"type": "meta", "t0": ..., "pid": ..., ...}``
    first line of every trace file; free-form identification attributes.
``{"type": "span", "name": ..., "parent": ..., "start": ..., "dur": ..., "attrs": {...}}``
    a closed span; ``start`` is ``time.perf_counter()``-based and only
    comparable within one file, ``dur`` is seconds.
``{"type": "event", "name": ..., "t": ..., "attrs": {...}}``
    a point event.
``{"type": "counters", "t": ..., "values": {...}}``
    cumulative counter snapshot; the *last* snapshot in a file wins.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, TextIO


class _NullSpan:
    """Context manager returned by :meth:`NullTracer.span`; swallows attrs."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __setitem__(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that does nothing — the default for un-traced runs."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, by: int = 1) -> None:
        pass

    def counter_set(self, name: str, value: int) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def flush_counters(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans, counters and events; optionally streams JSONL.

    ``sink`` may be a filesystem path (opened for writing), an open
    file-like object (not closed by :meth:`close`), or ``None`` for
    in-memory recording only (everything is still available via
    :attr:`records`).  Not thread-safe for *nested spans across threads*
    (the span stack is shared); counter updates and writes are locked.
    """

    enabled = True

    def __init__(self, sink: str | os.PathLike | TextIO | None = None,
                 **meta) -> None:
        self._lock = threading.Lock()
        self._stack: list[str] = []
        self.counters: dict[str, int] = {}
        self.records: list[dict] = []
        self.path: str | None = None
        self._own_handle = False
        if sink is None:
            self._fh: TextIO | None = None
        elif hasattr(sink, "write"):
            self._fh = sink  # type: ignore[assignment]
        else:
            self.path = os.fspath(sink)
            self._fh = open(self.path, "w")
            self._own_handle = True
        self._closed = False
        self._emit(
            {"type": "meta", "t0": time.time(), "pid": os.getpid(), **meta}
        )

    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)
            if self._fh is not None and not self._closed:
                self._fh.write(json.dumps(record, default=str) + "\n")
                self._fh.flush()

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """A timed span; the yielded dict collects attributes, including
        any the caller adds before the span closes."""
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        payload: dict[str, Any] = dict(attrs)
        start = time.perf_counter()
        try:
            yield payload
        finally:
            dur = time.perf_counter() - start
            self._stack.pop()
            self._emit(
                {
                    "type": "span",
                    "name": name,
                    "parent": parent,
                    "start": start,
                    "dur": dur,
                    "attrs": payload,
                }
            )

    def count(self, name: str, by: int = 1) -> None:
        """Bump a monotonic counter (no line emitted until a flush)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + by

    def counter_set(self, name: str, value: int) -> None:
        """Set a counter to an absolute value (for externally-kept tallies,
        e.g. the BDD manager's always-on operation counters)."""
        with self._lock:
            self.counters[name] = int(value)

    def event(self, name: str, **attrs) -> None:
        self._emit(
            {
                "type": "event",
                "name": name,
                "t": time.perf_counter(),
                "attrs": attrs,
            }
        )

    def flush_counters(self) -> None:
        """Emit a cumulative counter snapshot line."""
        with self._lock:
            values = dict(self.counters)
        self._emit({"type": "counters", "t": time.perf_counter(), "values": values})

    def close(self) -> None:
        """Flush a final counter snapshot and close an owned file handle."""
        if self._closed:
            return
        self.flush_counters()
        self._closed = True
        if self._fh is not None and self._own_handle:
            self._fh.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def record_bdd_counters(tracer: "Tracer | NullTracer", bdd,
                        prefix: str = "bdd") -> None:
    """Snapshot a BDD manager's always-on operation counters into a tracer."""
    if not tracer.enabled:
        return
    for name, value in bdd.counters().items():
        tracer.counter_set(f"{prefix}.{name}", value)


# ----------------------------------------------------------------------
# current-tracer management (one per process; workers install their own)
# ----------------------------------------------------------------------
_current: "Tracer | NullTracer" = NULL_TRACER


def current_tracer() -> "Tracer | NullTracer":
    """The process-wide active tracer (:data:`NULL_TRACER` by default)."""
    return _current


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Install ``tracer`` as the current tracer for the duration of a block."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
