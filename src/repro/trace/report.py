"""Aggregation and rendering of JSONL trace files.

``stsyn trace-report run.jsonl`` prints the per-span wall-time breakdown
(the paper's per-pass times), the counter table (deadlocks resolved per
pass, cycle-resolution work) and the BDD operation counters (``ite`` calls
and memo hit rates — the observable cost of the symbolic engine).

Multiple files aggregate naturally: spans concatenate, counters sum
(each file's *last* cumulative snapshot wins within the file), so a
portfolio run's per-worker traces can be reported together or first
combined with :func:`merge_traces`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..metrics.reporting import ResultTable, render_tables, safe_percent


def iter_events(path: str | os.PathLike) -> Iterator[dict]:
    """Yield the JSON events of one trace file, skipping malformed lines.

    A cancelled portfolio loser may have been killed mid-write; its last
    line can be truncated and must not poison the report.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


@dataclass
class SpanAgg:
    """Aggregate of all closed spans sharing one name."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0
    #: True when at least one instance was a root span (no parent)
    root: bool = False

    def add(self, dur: float, parent) -> None:
        self.count += 1
        self.total += dur
        self.max = max(self.max, dur)
        if parent is None:
            self.root = True


@dataclass
class TraceSummary:
    """Everything the report renders, aggregated across trace files."""

    spans: dict[str, SpanAgg] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    metas: list[dict] = field(default_factory=list)
    n_events: int = 0
    n_files: int = 0

    @property
    def wall_time(self) -> float:
        """Total time of root spans — the percentage base for the span table."""
        return sum(a.total for a in self.spans.values() if a.root)


def summarize(paths: Sequence[str | os.PathLike]) -> TraceSummary:
    summary = TraceSummary()
    for path in paths:
        summary.n_files += 1
        # cumulative: last snapshot wins *per source* — a merged file holds
        # one stream per original file, tagged "src" by merge_traces
        source_counters: dict[str | None, dict] = {}
        for record in iter_events(path):
            summary.n_events += 1
            kind = record.get("type")
            if kind == "span":
                agg = summary.spans.setdefault(str(record.get("name")), SpanAgg())
                agg.add(float(record.get("dur", 0.0)), record.get("parent"))
            elif kind == "counters":
                values = record.get("values")
                if isinstance(values, dict):
                    source_counters[record.get("src")] = values
            elif kind == "meta":
                summary.metas.append(record)
        for values in source_counters.values():
            for name, value in values.items():
                if isinstance(value, (int, float)):
                    summary.counters[name] = (
                        summary.counters.get(name, 0) + int(value)
                    )
    return summary


def render_report(summary: TraceSummary) -> str:
    tables = []

    spans = ResultTable(
        "Trace spans (wall time)",
        ["span", "calls", "total (s)", "mean (ms)", "% of run"],
        note=f"{summary.n_files} trace file(s), {summary.n_events} events",
    )
    wall = summary.wall_time
    for name in sorted(summary.spans, key=lambda n: -summary.spans[n].total):
        agg = summary.spans[name]
        spans.add(
            name,
            agg.count,
            agg.total,
            1000.0 * agg.total / agg.count if agg.count else 0.0,
            safe_percent(agg.total, wall),
        )
    tables.append(spans)

    bdd = ResultTable(
        "BDD manager",
        ["counter", "value"],
        note="ite/memo counters are always-on tallies from repro.bdd",
    )
    ite_calls = summary.counters.get("bdd.ite_calls", 0)
    ite_hits = summary.counters.get("bdd.ite_cache_hits", 0)
    bdd.add("ite calls", ite_calls)
    bdd.add("ite memo hits", ite_hits)
    bdd.add("ite memo hit rate (%)", safe_percent(ite_hits, ite_calls))
    op_lookups = summary.counters.get("bdd.op_cache_lookups", 0)
    op_hits = summary.counters.get("bdd.op_cache_hits", 0)
    bdd.add("op-cache lookups", op_lookups)
    bdd.add("op-cache hit rate (%)", safe_percent(op_hits, op_lookups))
    bdd.add("unique-table nodes", summary.counters.get("bdd.unique_nodes", 0))
    bdd.add("live nodes (final)", summary.counters.get("bdd.live_nodes", 0))
    bdd.add("peak live nodes", summary.counters.get("bdd.peak_live_nodes", 0))
    bdd.add("gc runs", summary.counters.get("bdd.gc_runs", 0))
    bdd.add("gc nodes collected", summary.counters.get("bdd.gc_collected", 0))
    bdd.add("reorder runs", summary.counters.get("bdd.reorder_runs", 0))
    bdd.add("reorder swaps", summary.counters.get("bdd.reorder_swaps", 0))
    tables.append(bdd)

    portfolio_counters = {
        name: value
        for name, value in summary.counters.items()
        if name.startswith("portfolio.") or name == "precompute_reused"
    }
    if portfolio_counters:
        portfolio = ResultTable(
            "Portfolio scheduler",
            ["counter", "value"],
            note="shared-precompute portfolio: cache + cooperative cancellation",
        )
        hits = portfolio_counters.get("portfolio.cache_hits", 0)
        misses = portfolio_counters.get("portfolio.cache_misses", 0)
        portfolio.add("cache hits", hits)
        portfolio.add("cache misses", misses)
        portfolio.add("cache hit rate (%)", safe_percent(hits, hits + misses))
        portfolio.add(
            "losers cancelled cooperatively",
            portfolio_counters.get("portfolio.losers_cancelled", 0),
        )
        portfolio.add(
            "precompute reuses (workers)",
            portfolio_counters.get("precompute_reused", 0),
        )
        portfolio.add(
            "worker crashes",
            portfolio_counters.get("portfolio.worker_crashes", 0),
        )
        portfolio.add(
            "watchdog kills",
            portfolio_counters.get("portfolio.watchdog_kills", 0),
        )
        portfolio.add(
            "retries (requeued configs)",
            portfolio_counters.get("portfolio.retries", 0),
        )
        portfolio.add(
            "resume skips (journal)",
            portfolio_counters.get("portfolio.resume_skips", 0),
        )
        portfolio.add(
            "cache entries quarantined",
            portfolio_counters.get("portfolio.cache_quarantined", 0),
        )
        tables.append(portfolio)

    transport_counters = {
        name: value
        for name, value in summary.counters.items()
        if name.startswith("transport.")
    }
    if transport_counters:
        transport = ResultTable(
            "Transport",
            ["counter", "value"],
            note="distributed race: leases, duplicates, shared-store hygiene",
        )
        transport.add(
            "remote dispatches",
            transport_counters.get("transport.remote_dispatches", 0),
        )
        transport.add(
            "reconnects", transport_counters.get("transport.reconnects", 0)
        )
        transport.add(
            "lease expiries",
            transport_counters.get("transport.lease_expiries", 0),
        )
        duplicates = transport_counters.get("transport.duplicate_results", 0)
        accepted = transport_counters.get("transport.duplicates_accepted", 0)
        transport.add("duplicate results", duplicates)
        transport.add("duplicates accepted (cert re-check)", accepted)
        transport.add(
            "degraded to local slots",
            transport_counters.get("transport.degraded_to_local", 0),
        )
        transport.add(
            "store partials quarantined",
            transport_counters.get("transport.store_partials_swept", 0),
        )
        transport.add(
            "stale store claims released",
            transport_counters.get("transport.stale_claims_released", 0),
        )
        transport.add(
            "store claim conflicts",
            transport_counters.get("transport.claim_conflicts", 0),
        )
        tables.append(transport)

    cert_counters = {
        name: value
        for name, value in summary.counters.items()
        if name.startswith("cert.")
    }
    if cert_counters:
        certs = ResultTable(
            "Certificates",
            ["counter", "value"],
            note="convergence certificates: emission + independent re-checks",
        )
        certs.add("certificates emitted", cert_counters.get("cert.emitted", 0))
        passed = cert_counters.get("cert.check_pass", 0)
        failed = cert_counters.get("cert.check_fail", 0)
        certs.add("checks passed", passed)
        certs.add("checks failed", failed)
        certs.add("check pass rate (%)", safe_percent(passed, passed + failed))
        tables.append(certs)

    service_counters = {
        name: value
        for name, value in summary.counters.items()
        if name.startswith("service.")
    }
    if service_counters:
        service = ResultTable(
            "Service",
            ["counter", "value"],
            note="stsyn serve: job admission, cache-backed answers, streams",
        )
        service.add(
            "jobs submitted", service_counters.get("service.jobs_submitted", 0)
        )
        service.add(
            "jobs rejected (backpressure/faults)",
            service_counters.get("service.jobs_rejected", 0),
        )
        hits = service_counters.get("service.cache_hits", 0)
        runs = service_counters.get("service.synth_runs", 0)
        service.add("answered from store (cert re-check)", hits)
        service.add("fresh synthesis runs", runs)
        service.add("store answer rate (%)", safe_percent(hits, hits + runs))
        service.add(
            "store entries quarantined",
            service_counters.get("service.store_quarantined", 0),
        )
        service.add(
            "jobs cancelled", service_counters.get("service.jobs_cancelled", 0)
        )
        service.add(
            "jobs failed", service_counters.get("service.jobs_failed", 0)
        )
        service.add(
            "trace streams served",
            service_counters.get("service.trace_streams", 0),
        )
        service.add(
            "streams dropped (fault drill)",
            service_counters.get("service.stream_drops", 0),
        )
        tables.append(service)

    fuzz_counters = {
        name: value
        for name, value in summary.counters.items()
        if name.startswith("fuzz.")
    }
    if fuzz_counters:
        fuzz = ResultTable(
            "Fuzz",
            ["counter", "value"],
            note="differential fuzz campaign (stsyn fuzz; see docs/FUZZING.md)",
        )
        generated = fuzz_counters.get("fuzz.generated", 0)
        fuzz.add("iterations", fuzz_counters.get("fuzz.iterations", 0))
        fuzz.add("instances generated", generated)
        rejects = fuzz_counters.get("fuzz.gen_rejects", 0)
        fuzz.add("generator rejects", rejects)
        fuzz.add(
            "generator accept rate (%)",
            safe_percent(generated, generated + rejects),
        )
        fuzz.add("states explored", fuzz_counters.get("fuzz.states_explored", 0))
        fuzz.add("oracle runs", fuzz_counters.get("fuzz.oracle_runs", 0))
        fuzz.add("findings", fuzz_counters.get("fuzz.findings", 0))
        fuzz.add("shrink steps accepted", fuzz_counters.get("fuzz.shrink_steps", 0))
        fuzz.add(
            "shrink candidates tried",
            fuzz_counters.get("fuzz.shrink_attempts", 0),
        )
        fuzz.add("corpus entries written", fuzz_counters.get("fuzz.corpus_entries", 0))
        tables.append(fuzz)

    counters = ResultTable("Counters", ["counter", "value"])
    for name in sorted(summary.counters):
        if (
            name.startswith("bdd.")
            or name.startswith("portfolio.")
            or name.startswith("transport.")
            or name.startswith("cert.")
            or name.startswith("service.")
            or name.startswith("fuzz.")
        ):
            continue
        counters.add(name, summary.counters[name])
    tables.append(counters)

    return render_tables(tables)


def trace_report(paths: Sequence[str | os.PathLike]) -> str:
    """One-call convenience: summarize + render."""
    return render_report(summarize(paths))


def merge_traces(
    paths: Iterable[str | os.PathLike], out_path: str | os.PathLike
) -> int:
    """Concatenate trace files into one, tagging every event with its
    source file stem (``"src"``); returns the number of events written.

    Used by the parallel portfolio so the winning worker's profile — and
    the partial traces of cancelled losers — survive in a single artifact.
    """
    written = 0
    with open(out_path, "w") as out:
        for path in paths:
            src = os.path.splitext(os.path.basename(os.fspath(path)))[0]
            for record in iter_events(path):
                record["src"] = src
                out.write(json.dumps(record, default=str) + "\n")
                written += 1
    return written
