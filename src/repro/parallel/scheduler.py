"""Adaptive portfolio scheduling: cost ordering, deadlines, cancellation.

The paper runs one heuristic instance per schedule on one machine each; on a
shared pool the order in which configurations hit the workers matters.  This
module provides the three scheduling ingredients of the portfolio engine:

:class:`CostModel`
    remembers how long each configuration took on a given protocol
    (persisted as ``costs.json`` in the cache directory, fed from measured
    worker wall-clock or trace timings) and orders the queue cheapest-first.
    Unknown configs keep their portfolio order *after* the known ones — the
    default portfolio already leads with the paper's preferred schedule.

:class:`CancelToken`
    a cooperative cancellation handle combining the race-wide "a winner
    verified" :class:`multiprocessing.Event` with a per-worker soft
    deadline.  The heuristic polls ``is_set()`` at pass/rank boundaries, so
    losers stop burning CPU long before ``pool.terminate`` lands, and a
    config over budget yields its worker back to the queue.
"""

from __future__ import annotations

import json
import os
import time
from typing import Sequence

from .storeio import atomic_write_json


class CancelToken:
    """Duck-typed cancellation token for ``add_strong_convergence(cancel=...)``.

    Fires when the shared ``event`` is set (a portfolio winner verified) or
    when ``deadline`` (an absolute ``time.monotonic()`` instant) passes.
    """

    def __init__(self, event=None, deadline: float | None = None):
        self.event = event
        self.deadline = deadline

    @classmethod
    def with_budget(cls, event=None, budget: float | None = None) -> "CancelToken":
        """A token whose deadline is ``budget`` seconds from now."""
        deadline = None if budget is None else time.monotonic() + budget
        return cls(event=event, deadline=deadline)

    def is_set(self) -> bool:
        if self.event is not None and self.event.is_set():
            return True
        return self.deadline is not None and time.monotonic() > self.deadline

    def reason(self) -> str:
        if self.event is not None and self.event.is_set():
            return "cancelled"
        if self.deadline is not None and time.monotonic() > self.deadline:
            return "deadline"
        return "not-cancelled"


class CostModel:
    """Observed per-config wall-clock, keyed by protocol fingerprint.

    ``costs.json`` schema::

        {"<fingerprint>": {"<config.describe()>": seconds, ...}, ...}

    Estimates fall back to ``None`` (unknown) rather than guessing; the
    scheduler keeps unknown configs in their given order.
    """

    FILENAME = "costs.json"

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = None if path is None else os.fspath(path)
        self._data: dict[str, dict[str, float]] = {}
        if self.path is not None and os.path.exists(self.path):
            try:
                with open(self.path) as handle:
                    loaded = json.load(handle)
                if isinstance(loaded, dict):
                    self._data = {
                        str(fp): {str(k): float(v) for k, v in entry.items()}
                        for fp, entry in loaded.items()
                        if isinstance(entry, dict)
                    }
            except (OSError, json.JSONDecodeError, ValueError):
                self._data = {}

    @classmethod
    def in_dir(cls, directory: str | os.PathLike | None) -> "CostModel":
        if directory is None:
            return cls(None)
        return cls(os.path.join(os.fspath(directory), cls.FILENAME))

    # ------------------------------------------------------------------
    def estimate(self, fingerprint: str, config) -> float | None:
        return self._data.get(fingerprint, {}).get(config.describe())

    def observe(self, fingerprint: str, config, seconds: float) -> None:
        entry = self._data.setdefault(fingerprint, {})
        key = config.describe()
        # exponential smoothing so one noisy run does not dominate
        prev = entry.get(key)
        entry[key] = seconds if prev is None else 0.5 * prev + 0.5 * seconds

    def save(self) -> None:
        """Merge into the on-disk file instead of last-writer-wins: two
        concurrent sweeps (or a sweep racing a resume) each keep their own
        observations, with this model's values winning per (fingerprint,
        config) key.  The write itself goes through
        :func:`~repro.parallel.storeio.atomic_write_json` — writer-unique
        temp name plus atomic rename — so concurrent multi-host sweeps
        sharing one store can never interleave bytes in a common temp file
        or expose a half-written ``costs.json``."""
        if self.path is None:
            return
        merged = CostModel(self.path)._data  # reload what others wrote
        for fingerprint, entry in self._data.items():
            merged.setdefault(fingerprint, {}).update(entry)
        self._data = merged
        atomic_write_json(self.path, merged)


def order_portfolio(
    configs: Sequence, fingerprint: str, cost_model: CostModel | None
) -> list:
    """Cheapest-known-first stable ordering of the configuration queue.

    Configs with an observed cost sort ascending by it and go first (fast
    probable winners reach workers early, so the cancellation event fires
    sooner); configs never seen keep their original portfolio order behind
    them.
    """
    if cost_model is None:
        return list(configs)
    known: list[tuple[float, int]] = []
    unknown: list[int] = []
    for index, config in enumerate(configs):
        cost = cost_model.estimate(fingerprint, config)
        if cost is None:
            unknown.append(index)
        else:
            known.append((cost, index))
    known.sort()
    return [configs[i] for _, i in known] + [configs[i] for i in unknown]
