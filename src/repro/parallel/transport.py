"""Pluggable worker transport for the portfolio race.

The paper's Figure 1 sketch — "one instance of our heuristic on a separate
machine" — finally spans actual machines.  The supervised race in
:mod:`repro.parallel.pool` no longer talks to ``Process``+``Pipe`` pairs
directly; it drives :class:`WorkerChannel` objects obtained from a
transport, and two transports implement the contract:

:class:`LocalProcessTransport`
    today's path, unchanged semantics: one dedicated worker process per
    slot, jobs over a duplex pipe, crash = pipe EOF / dead process,
    cancellation via the shared ``multiprocessing.Event``.

:class:`TcpTransport`
    one channel per remote ``host:port`` endpoint (a ``stsyn worker
    --listen`` server), length-prefixed JSON frames over a plain socket.
    Failure is no longer process death: a partitioned network delivers
    silence, not EOF, so every dispatched job carries a **lease** — the
    worker heartbeats while it computes, and the supervisor re-dispatches
    a config whose lease misses its heartbeats (see ``pool.py``).  A late
    result from the original worker is then a *duplicate*: accepted only
    if its convergence certificate independently re-checks, discarded
    otherwise.  When an endpoint is lost and cannot be replaced the
    transport degrades to local slots (``transport.degraded_to_local``),
    so the race still completes with zero live remotes.

Wire protocol (both directions): a 4-byte big-endian length prefix, then
that many bytes of UTF-8 JSON.  Coordinator→worker frames: ``job``,
``cancel``, ``shutdown``.  Worker→coordinator: ``hello`` (on accept),
``heartbeat``, ``result``, ``error``.  Everything on the wire is plain
JSON — configs via :func:`config_to_payload`, outcomes via
:func:`outcome_to_payload`, the protocol itself as an importable builder
reference (:func:`builder_ref`) re-resolved on the worker, and the active
:class:`~repro.faults.runtime.FaultPlan` so one ``REPRO_FAULT_PLAN`` on
the coordinator drives a whole-cluster chaos drill.

Network fault injection hooks live in :mod:`repro.faults.runtime`
(``drop_frame``, ``delay_frame``, ``duplicate_result``, ``partition``,
``stale_lease``) and fire on the worker's send path, so every recovery
path above is deterministically testable without a flaky network.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import os
import select
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core import exceptions as core_exceptions
from ..core.exceptions import TransportError
from ..core.heuristic import HeuristicOptions
from ..core.synthesizer import SynthesisConfig
from ..faults import runtime as fault_runtime
from ..faults.runtime import FaultPlan
from ..trace.tracer import NULL_TRACER

#: length-prefix format: 4-byte unsigned big-endian
_LEN = struct.Struct(">I")

#: refuse frames beyond this (a corrupt prefix must not allocate 4 GiB)
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: default TCP port for ``stsyn worker --listen`` when none is given
DEFAULT_WORKER_PORT = 9178


# ----------------------------------------------------------------------
# frame protocol
# ----------------------------------------------------------------------


def encode_frame(obj: dict) -> bytes:
    """Length-prefixed JSON frame bytes for one message."""
    body = json.dumps(obj, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(body)} bytes exceeds limit")
    return _LEN.pack(len(body)) + body


def send_frame(sock: socket.socket, obj: dict) -> None:
    """Send one frame; any socket failure surfaces as TransportError."""
    try:
        sock.sendall(encode_frame(obj))
    except (OSError, ValueError) as exc:
        raise TransportError(f"frame send failed: {exc}") from exc


def recv_frame(sock: socket.socket, timeout: float | None = None) -> dict:
    """Blocking receive of one frame (for the worker-server side).

    Raises :class:`TransportError` on EOF, a torn frame, malformed JSON or
    an oversized length prefix; ``socket.timeout`` propagates so callers
    can poll.
    """
    sock.settimeout(timeout)
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame length {length} exceeds limit")
    body = _recv_exact(sock, length)
    try:
        obj = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise TransportError("frame payload is not a JSON object")
    return obj


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        try:
            chunk = sock.recv(n)
        except socket.timeout:
            if chunks:
                # mid-frame timeout would tear the stream; keep waiting
                continue
            raise
        except OSError as exc:
            raise TransportError(f"frame receive failed: {exc}") from exc
        if not chunk:
            raise TransportError("connection closed mid-frame (EOF)")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


class FrameBuffer:
    """Incremental frame parser for the coordinator's non-blocking sockets."""

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Append raw bytes; return every now-complete frame."""
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack(self._buf[: _LEN.size])
            if length > MAX_FRAME_BYTES:
                raise TransportError(f"frame length {length} exceeds limit")
            end = _LEN.size + length
            if len(self._buf) < end:
                return frames
            body = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            try:
                obj = json.loads(body.decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TransportError(f"malformed frame: {exc}") from exc
            if not isinstance(obj, dict):
                raise TransportError("frame payload is not a JSON object")
            frames.append(obj)


# ----------------------------------------------------------------------
# payload codecs: everything on the wire is plain JSON
# ----------------------------------------------------------------------


def config_to_payload(config: SynthesisConfig) -> dict:
    return {
        "schedule": list(config.schedule),
        "options": dataclasses.asdict(config.options),
    }


def config_from_payload(payload: dict) -> SynthesisConfig:
    return SynthesisConfig(
        schedule=tuple(payload["schedule"]),
        options=HeuristicOptions(**payload["options"]),
    )


def outcome_to_payload(outcome) -> dict:
    """JSON record of a :class:`~repro.parallel.ParallelOutcome` (config is
    NOT included — the coordinator reattaches it from the lease)."""
    return {
        "success": outcome.success,
        "pss_groups": (
            [sorted(g) for g in outcome.pss_groups]
            if outcome.pss_groups is not None
            else None
        ),
        "remaining_deadlocks": outcome.remaining_deadlocks,
        "timers": dict(outcome.timers),
        "counters": dict(outcome.counters),
        "cancelled": outcome.cancelled,
        "cancel_reason": outcome.cancel_reason,
        "duration": outcome.duration,
        "retries": outcome.retries,
        "certificate": outcome.certificate,
    }


def outcome_from_payload(config: SynthesisConfig, payload: dict):
    from .pool import ParallelOutcome

    pss = payload.get("pss_groups")
    return ParallelOutcome(
        config=config,
        success=bool(payload.get("success", False)),
        pss_groups=(
            [set(map(tuple, g)) for g in pss] if pss is not None else None
        ),
        remaining_deadlocks=int(payload.get("remaining_deadlocks", -1)),
        timers=dict(payload.get("timers", {})),
        counters=dict(payload.get("counters", {})),
        cancelled=bool(payload.get("cancelled", False)),
        cancel_reason=payload.get("cancel_reason"),
        duration=float(payload.get("duration", 0.0)),
        retries=int(payload.get("retries", 0)),
        certificate=payload.get("certificate"),
    )


def builder_ref(builder: Callable, builder_args: tuple) -> dict:
    """Importable reference to a protocol builder, shippable as JSON.

    A remote worker cannot receive a pickled closure over a JSON wire; it
    re-imports ``module:qualname`` and calls it with the (JSON-checked)
    arguments — exactly what the spawn start method already requires of
    builders, so every builder that works locally today qualifies.
    """
    module = getattr(builder, "__module__", None)
    qualname = getattr(builder, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise TransportError(
            f"builder {builder!r} is not importable (module-level callables "
            "only); remote workers re-import it by name"
        )
    try:
        json.dumps(list(builder_args))
    except (TypeError, ValueError) as exc:
        raise TransportError(
            f"builder args {builder_args!r} are not JSON-serialisable: {exc}"
        ) from exc
    ref = {"ref": f"{module}:{qualname}", "args": list(builder_args)}
    resolved, _ = resolve_builder(ref)  # fail fast on the coordinator
    if resolved is not builder:
        raise TransportError(
            f"builder {module}:{qualname} does not resolve back to itself"
        )
    return ref


def resolve_builder(ref: dict) -> tuple[Callable, tuple]:
    """Worker-side inverse of :func:`builder_ref`."""
    try:
        module_name, _, qualname = str(ref["ref"]).partition(":")
        obj = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj, tuple(ref.get("args", ()))
    except (KeyError, ImportError, AttributeError, ValueError) as exc:
        raise TransportError(f"cannot resolve builder {ref!r}: {exc}") from exc


def _exception_from_frame(frame: dict) -> BaseException:
    """Rebuild a worker-side exception from its wire record.

    Known synthesis exceptions (complete negative answers like
    ``NotClosedError``) reconstruct as their own type so the parent's
    "answers re-raise, never retry" rule keeps working across the network;
    anything else becomes a RuntimeError carrying the original type name.
    """
    exc_type = str(frame.get("exc_type", "RuntimeError"))
    message = str(frame.get("message", ""))
    cls = getattr(core_exceptions, exc_type, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        try:
            return cls(message)
        except TypeError:
            pass
    return RuntimeError(f"remote worker raised {exc_type}: {message}")


def parse_endpoint(spec: str) -> tuple[str, int]:
    """``"host:port"`` (or bare ``"host"`` with the default port) → tuple."""
    spec = spec.strip()
    host, sep, port = spec.rpartition(":")
    if not sep:
        return spec, DEFAULT_WORKER_PORT
    try:
        return host or "127.0.0.1", int(port)
    except ValueError as exc:
        raise TransportError(f"bad worker endpoint {spec!r}") from exc


# ----------------------------------------------------------------------
# channel + transport contracts
# ----------------------------------------------------------------------


@dataclass
class Message:
    """One normalised worker→supervisor message."""

    kind: str  # "heartbeat" | "result" | "error"
    lease_id: str
    #: decoded outcome (local channels deliver the object directly)
    outcome: object | None = None
    #: raw outcome payload (TCP channels; decoded once the config is known)
    payload: dict | None = None
    error: BaseException | None = None


class WorkerChannel:
    """One supervised worker slot, transport-agnostic."""

    remote = False
    supports_heartbeat = False
    worker_id = "?"

    def send_job(self, job: dict) -> None:
        raise NotImplementedError

    def send_cancel(self) -> None:
        """Best-effort 'a winner verified elsewhere' signal."""

    def send_shutdown(self) -> None:
        """Best-effort graceful shutdown signal."""

    def wait_handle(self):
        """Object accepted by ``multiprocessing.connection.wait``."""
        raise NotImplementedError

    def pump(self) -> list[Message]:
        """Drain every available message; TransportError on a dead peer."""
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def kill(self) -> None:
        """Hard-stop the worker behind this channel (watchdog path)."""

    def close(self) -> None:
        raise NotImplementedError

    def exitcode(self):
        return None


class LocalProcessChannel(WorkerChannel):
    """Today's ``Process``+``Pipe`` slot behind the channel interface.

    No heartbeats: process liveness and pipe EOF already give the
    supervisor a crisp failure signal on one box, so the lease machinery
    stays out of the local fast path.
    """

    remote = False
    supports_heartbeat = False

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.worker_id = f"local-pid{proc.pid}"

    def send_job(self, job: dict) -> None:
        try:
            self.conn.send(job)
        except (BrokenPipeError, OSError) as exc:
            raise TransportError(f"local worker pipe closed: {exc}") from exc

    def send_shutdown(self) -> None:
        try:
            self.conn.send(None)  # the worker loop's shutdown sentinel
        except (BrokenPipeError, OSError):
            pass

    def wait_handle(self):
        return self.conn

    def pump(self) -> list[Message]:
        messages = []
        try:
            while self.conn.poll(0):
                lease_id, body = self.conn.recv()
                messages.append(self._wrap(lease_id, body))
        except (EOFError, OSError) as exc:
            raise TransportError(f"local worker died: {exc}") from exc
        return messages

    @staticmethod
    def _wrap(lease_id: str, body) -> Message:
        from .pool import _WorkerError

        if isinstance(body, _WorkerError):
            return Message(kind="error", lease_id=lease_id, error=body.exception)
        return Message(kind="result", lease_id=lease_id, outcome=body)

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        self.proc.terminate()

    def close(self) -> None:
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def exitcode(self):
        return self.proc.exitcode


class TcpWorkerChannel(WorkerChannel):
    """A remote ``stsyn worker`` endpoint speaking JSON frames."""

    remote = True
    supports_heartbeat = True

    def __init__(self, sock: socket.socket, endpoint: tuple[str, int], template: dict):
        self.sock = sock
        self.endpoint = endpoint
        self.template = template
        self.worker_id = f"{endpoint[0]}:{endpoint[1]}"
        self._buffer = FrameBuffer()
        self._closed = False
        sock.setblocking(False)

    # -- sending -------------------------------------------------------
    def _send(self, frame: dict) -> None:
        if self._closed:
            raise TransportError(f"channel to {self.worker_id} is closed")
        try:
            self.sock.setblocking(True)
            send_frame(self.sock, frame)
        finally:
            if not self._closed:
                self.sock.setblocking(False)

    def send_job(self, job: dict) -> None:
        frame = dict(self.template)
        frame.update(
            t="job",
            lease_id=job["lease_id"],
            index=job["index"],
            attempt=job["attempt"],
            config=config_to_payload(job["config"]),
            # worker-local tracing only: a remote worker cannot write into
            # the coordinator's trace directory
        )
        self._send(frame)

    def send_cancel(self) -> None:
        try:
            self._send({"t": "cancel"})
        except TransportError:
            pass

    def send_shutdown(self) -> None:
        try:
            self._send({"t": "shutdown"})
        except TransportError:
            pass

    # -- receiving -----------------------------------------------------
    def wait_handle(self):
        return self.sock

    def pump(self) -> list[Message]:
        frames = []
        eof = False
        try:
            while True:
                data = self.sock.recv(65536)
                if not data:
                    eof = True  # deliver already-buffered frames first
                    break
                frames.extend(self._buffer.feed(data))
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            eof = True
        if eof:
            # a result that arrived just before the peer closed (e.g. a
            # worker exiting after --max-jobs) must not be lost: surface
            # the EOF only when there is nothing left to deliver
            self._closed = True
            if not frames:
                raise TransportError(
                    f"worker {self.worker_id} closed the connection"
                )
        messages = []
        for frame in frames:
            kind = frame.get("t")
            lease_id = str(frame.get("lease_id", ""))
            if kind == "heartbeat":
                messages.append(Message(kind="heartbeat", lease_id=lease_id))
            elif kind == "result":
                messages.append(
                    Message(
                        kind="result",
                        lease_id=lease_id,
                        payload=frame.get("outcome") or {},
                    )
                )
            elif kind == "error":
                messages.append(
                    Message(
                        kind="error",
                        lease_id=lease_id,
                        error=_exception_from_frame(frame),
                    )
                )
            # "hello" and unknown frames are connection chatter, not results
        return messages

    def alive(self) -> bool:
        return not self._closed

    def kill(self) -> None:
        # cannot kill a process on another machine; dropping the connection
        # makes the worker cancel its job and return to accept
        self.close()

    def close(self) -> None:
        # idempotent, and also reached after pump() observed EOF (where
        # _closed is already set but the descriptor is still open)
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------


class LocalProcessTransport:
    """Spawns supervised local worker processes (the PR-4 behaviour)."""

    name = "local"

    def __init__(self, ctx, worker_args: tuple, target: Callable):
        self.ctx = ctx
        self.worker_args = worker_args
        self.target = target

    def spawn(self) -> LocalProcessChannel:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=self.target, args=(child_conn, *self.worker_args), daemon=True
        )
        proc.start()
        # the parent must not hold the child's pipe end open, or a dead
        # worker would never surface as EOF
        child_conn.close()
        return LocalProcessChannel(proc, parent_conn)

    def open(self, n_slots: int) -> list[WorkerChannel]:
        return [self.spawn() for _ in range(n_slots)]

    def replace(self, channel: WorkerChannel, *, reason: str) -> WorkerChannel:
        return self.spawn()

    def close(self) -> None:
        pass


class TcpTransport:
    """Channels to remote ``stsyn worker`` endpoints, degrading to local.

    ``open`` connects to every endpoint (a dead endpoint is skipped with a
    counter, replaced by a local slot when a fallback transport is given).
    ``replace`` is the recovery policy:

    * ``reason="crash"`` (EOF / socket error): one reconnect attempt to the
      same endpoint (``transport.reconnects``), then local fallback;
    * ``reason="lease"`` (missed heartbeats): no reconnect — the endpoint
      is either partitioned away or still busy computing the now-stale
      lease; go straight to the fallback so the re-dispatched config makes
      progress (``transport.degraded_to_local``);
    * ``reason="watchdog"``: same as crash (the kill dropped the
      connection, the worker server survives and accepts again).
    """

    name = "tcp"

    def __init__(
        self,
        endpoints: Sequence[str],
        template: dict,
        *,
        tracer=NULL_TRACER,
        connect_timeout: float = 5.0,
        reconnect_timeout: float = 1.0,
        local_fallback: LocalProcessTransport | None = None,
    ):
        if not endpoints:
            raise TransportError("TcpTransport needs at least one endpoint")
        self.endpoints = [parse_endpoint(e) for e in endpoints]
        self.template = template
        self.tracer = tracer
        self.connect_timeout = connect_timeout
        self.reconnect_timeout = reconnect_timeout
        self.local_fallback = local_fallback

    # -- connection management ----------------------------------------
    def _connect(self, endpoint: tuple[str, int], timeout: float) -> TcpWorkerChannel:
        try:
            sock = socket.create_connection(endpoint, timeout=timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to worker {endpoint[0]}:{endpoint[1]}: {exc}"
            ) from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # a server mid-job leaves the connect in its backlog: demand the
            # hello frame before trusting the channel, so a busy or wedged
            # endpoint fails fast instead of silently eating a job frame
            hello = recv_frame(sock, timeout=timeout)
            if hello.get("t") != "hello":
                raise TransportError(
                    f"worker {endpoint[0]}:{endpoint[1]} sent "
                    f"{hello.get('t')!r} instead of hello"
                )
        except (socket.timeout, TransportError) as exc:
            sock.close()
            raise TransportError(
                f"no hello from worker {endpoint[0]}:{endpoint[1]}: {exc}"
            ) from exc
        return TcpWorkerChannel(sock, endpoint, self.template)

    def _fallback_slot(self) -> WorkerChannel | None:
        if self.local_fallback is None:
            return None
        self.tracer.count("transport.degraded_to_local")
        self.tracer.event("transport.degraded_to_local")
        return self.local_fallback.spawn()

    def open(self, n_slots: int) -> list[WorkerChannel]:
        channels: list[WorkerChannel] = []
        for endpoint in self.endpoints:
            try:
                channels.append(self._connect(endpoint, self.connect_timeout))
            except TransportError as exc:
                self.tracer.event(
                    "transport.connect_failed",
                    endpoint=f"{endpoint[0]}:{endpoint[1]}",
                    error=str(exc),
                )
                fallback = self._fallback_slot()
                if fallback is not None:
                    channels.append(fallback)
        if not channels:
            raise TransportError(
                "no worker endpoint reachable and no local fallback available"
            )
        return channels

    def replace(self, channel: WorkerChannel, *, reason: str) -> WorkerChannel | None:
        if isinstance(channel, TcpWorkerChannel) and reason != "lease":
            try:
                replacement = self._connect(
                    channel.endpoint, self.reconnect_timeout
                )
            except TransportError:
                pass
            else:
                self.tracer.count("transport.reconnects")
                self.tracer.event(
                    "transport.reconnect", endpoint=replacement.worker_id
                )
                return replacement
        if isinstance(channel, LocalProcessChannel):
            # a degraded local slot stays local
            if self.local_fallback is not None:
                return self.local_fallback.spawn()
            return None
        return self._fallback_slot()

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# the worker server (``stsyn worker --listen``)
# ----------------------------------------------------------------------


@dataclass
class _ActiveJob:
    lease_id: str
    config_desc: str
    thread: threading.Thread
    cancel: threading.Event
    outbox: list = field(default_factory=list)  # [(kind, body)] set by thread


class WorkerServer:
    """A single-tenant synthesis worker serving one coordinator at a time.

    Accepts a connection, answers ``job`` frames by running the full
    heuristic (rebuilding protocol + precompute from the shipped builder
    reference), heartbeats every ``heartbeat_interval`` while computing,
    honours ``cancel`` frames through the standard
    :class:`~repro.parallel.scheduler.CancelToken` path, and sends the
    outcome back as a ``result`` frame.  A dropped connection cancels the
    running job and the server returns to ``accept`` — a coordinator
    crash never wedges the fleet.

    All the network fault knobs of :class:`~repro.faults.runtime.FaultPlan`
    (frame drops/delays/duplication, partitions, stale leases) hook the
    send path here, and ``crash_worker_at`` still fires *inside* the job,
    taking the whole server down — the live-kill drill for a dead host.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_jobs: int | None = None,
        drain_timeout: float = 30.0,
        log: Callable[[str], None] | None = None,
    ):
        self.host = host
        self.port = port
        self.max_jobs = max_jobs
        self.drain_timeout = drain_timeout
        self.log = log or (lambda line: None)
        self.jobs_done = 0
        self._listener: socket.socket | None = None
        self._stop = threading.Event()
        self._drain = threading.Event()
        self._drain_deadline: float | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(4)
        listener.settimeout(0.2)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self.log(f"stsyn worker listening on {self.host}:{self.port}")
        return self.host, self.port

    def shutdown(self) -> None:
        self._stop.set()

    def request_drain(self) -> None:
        """Begin a graceful drain (SIGTERM path): stop accepting new
        coordinators, let the in-flight job finish — heartbeating all the
        while — up to ``drain_timeout`` seconds, deliver its result, then
        exit cleanly.  Today's alternative is a select loop dying mid-job
        and the coordinator paying a full lease timeout to notice."""
        if self._drain.is_set():
            return
        self._drain_deadline = time.monotonic() + max(0.0, self.drain_timeout)
        self._drain.set()
        self.log(
            f"drain requested: finishing in-flight work "
            f"(up to {self.drain_timeout:.0f}s), accepting no new jobs"
        )

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def serve_forever(self) -> None:
        if self._listener is None:
            self.start()
        try:
            while not self._stop.is_set():
                if self._drain.is_set():
                    return  # no active coordinator: drained, exit now
                if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                    return
                try:
                    conn, addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                self.log(f"coordinator connected from {addr[0]}:{addr[1]}")
                try:
                    self._serve_connection(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
                self.log("coordinator disconnected")
        finally:
            self._listener.close()
            self._listener = None

    # -- one connection ------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        send_lock = threading.Lock()

        def ship(frame: dict, frame_kind: str) -> None:
            """Fault-hooked send: drop/delay/partition per the active plan."""
            if fault_runtime.should_drop_frame(frame_kind):
                return
            delay = fault_runtime.frame_delay(frame_kind)
            if delay > 0:
                time.sleep(delay)
            with send_lock:
                send_frame(conn, frame)

        try:
            with send_lock:
                send_frame(
                    conn,
                    {"t": "hello", "worker": f"pid{os.getpid()}", "max_jobs": self.max_jobs},
                )
        except TransportError:
            return

        active: _ActiveJob | None = None
        heartbeat_interval = 1.0
        last_beat = 0.0
        buffer = FrameBuffer()
        conn.setblocking(False)
        try:
            while not self._stop.is_set():
                try:
                    readable, _, _ = select.select([conn], [], [], 0.05)
                except OSError:
                    return
                if readable:
                    try:
                        data = conn.recv(65536)
                    except (BlockingIOError, InterruptedError):
                        data = None
                    except OSError:
                        return
                    else:
                        if not data:
                            return  # coordinator gone
                    frames = buffer.feed(data) if data else []
                    for frame in frames:
                        kind = frame.get("t")
                        if kind == "job":
                            if self._drain.is_set():
                                # draining: refuse, so the coordinator
                                # re-dispatches elsewhere instead of paying
                                # a lease timeout on a doomed assignment
                                ship(
                                    {
                                        "t": "error",
                                        "lease_id": frame.get("lease_id", ""),
                                        "exc_type": "TransportError",
                                        "message": "worker is draining",
                                    },
                                    "error",
                                )
                                continue
                            if active is not None and active.thread.is_alive():
                                ship(
                                    {
                                        "t": "error",
                                        "lease_id": frame.get("lease_id", ""),
                                        "exc_type": "TransportError",
                                        "message": "worker is busy",
                                    },
                                    "error",
                                )
                                continue
                            active = self._start_job(frame)
                            heartbeat_interval = float(
                                frame.get("heartbeat_interval", 1.0)
                            )
                            last_beat = time.monotonic()
                        elif kind == "cancel":
                            if active is not None:
                                active.cancel.set()
                        elif kind == "shutdown":
                            return
                now = time.monotonic()
                if active is not None and active.thread.is_alive():
                    if now - last_beat >= heartbeat_interval:
                        # final heartbeats keep flowing during a drain, so
                        # the coordinator's lease stays fresh while the
                        # in-flight job wraps up
                        ship(
                            {"t": "heartbeat", "lease_id": active.lease_id},
                            "heartbeat",
                        )
                        last_beat = now
                    if (
                        self._drain.is_set()
                        and self._drain_deadline is not None
                        and now >= self._drain_deadline
                    ):
                        # drain budget exhausted: cancel cooperatively; the
                        # job returns a cancelled outcome at its next
                        # pass/rank boundary and is delivered below.  A job
                        # that ignores the token (hang drill) is abandoned
                        # another grace period later by the finally clause.
                        active.cancel.set()
                        if now >= self._drain_deadline + 5.0:
                            return
                elif active is not None:
                    # job finished: deliver its outcome (or error)
                    active.thread.join()
                    self._deliver(active, ship)
                    self.jobs_done += 1
                    active = None
                    if self._drain.is_set():
                        return  # drained: in-flight work delivered, exit
                    if (
                        self.max_jobs is not None
                        and self.jobs_done >= self.max_jobs
                    ):
                        return
                elif self._drain.is_set():
                    return  # idle and draining: nothing to wait for
        except TransportError:
            return
        finally:
            if active is not None:
                active.cancel.set()
                active.thread.join(timeout=30.0)

    def _start_job(self, frame: dict) -> _ActiveJob:
        cancel = threading.Event()
        lease_id = str(frame.get("lease_id", ""))
        config = config_from_payload(frame["config"])
        self.log(f"job {lease_id}: {config.describe()}")
        job = _ActiveJob(
            lease_id=lease_id,
            config_desc=config.describe(),
            thread=None,  # set below
            cancel=cancel,
        )

        def run() -> None:
            from .pool import _init_worker, _worker

            try:
                builder, builder_args = resolve_builder(frame["builder"])
                plan_payload = frame.get("fault_plan")
                plan = (
                    FaultPlan(**plan_payload)
                    if plan_payload is not None
                    else FaultPlan.from_env()
                )
                _init_worker(
                    cancel,
                    frame.get("soft_deadline"),
                    builder,
                    builder_args,
                    None,
                    plan,
                )
                outcome = _worker(
                    (config, int(frame.get("index", 0)), None,
                     int(frame.get("attempt", 0)))
                )
            except BaseException as exc:  # travels back as an error frame
                job.outbox.append(("error", exc))
            else:
                job.outbox.append(("result", outcome))

        thread = threading.Thread(target=run, daemon=True)
        job.thread = thread
        thread.start()
        return job

    def _deliver(self, job: _ActiveJob, ship) -> None:
        if not job.outbox:
            return
        kind, body = job.outbox[-1]
        if kind == "error":
            self.log(f"job {job.lease_id}: error {type(body).__name__}: {body}")
            ship(
                {
                    "t": "error",
                    "lease_id": job.lease_id,
                    "exc_type": type(body).__name__,
                    "message": str(body),
                },
                "error",
            )
            return
        # the stale-lease drill: sit on the finished result (no heartbeats
        # are flowing any more) until the coordinator's lease has expired
        delay = fault_runtime.stale_lease_delay()
        if delay > 0:
            time.sleep(delay)
        frame = {
            "t": "result",
            "lease_id": job.lease_id,
            "outcome": outcome_to_payload(body),
        }
        self.log(
            f"job {job.lease_id}: done success={body.success} "
            f"cancelled={body.cancelled}"
        )
        ship(frame, "result")
        if fault_runtime.should_duplicate_result():
            ship(frame, "result")


def run_worker_server(
    listen: str,
    *,
    max_jobs: int | None = None,
    drain_timeout: float = 30.0,
    log: Callable[[str], None] | None = None,
) -> int:
    """Entry point of ``stsyn worker --listen host:port``; returns jobs done.

    SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish the
    in-flight job (heartbeats included) up to ``drain_timeout`` seconds,
    deliver its result, exit 0.  A second signal forces an immediate stop.
    """
    import signal

    host, port = parse_endpoint(listen)
    server = WorkerServer(
        host, port, max_jobs=max_jobs, drain_timeout=drain_timeout, log=log
    )

    def _on_signal(signum, frame):
        if server.draining:
            server.log("second signal: stopping immediately")
            server.shutdown()
        else:
            server.request_drain()

    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, _on_signal)
    except ValueError:
        pass  # not the main thread (embedded in tests): no signal hooks
    server.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    if server.draining:
        server.log("drained cleanly")
    return server.jobs_done
