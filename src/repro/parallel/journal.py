"""Crash-safe checkpoint journal for portfolio sweeps.

A long sweep killed by SIGKILL or power loss used to lose every partial
outcome; related synthesis tools treat exhaustive searches as restartable
batch jobs.  Here the parent appends one JSON line per settled config —
completed, deadline-cancelled or crashed-out — to ``portfolio_state.jsonl``
in the cache directory, and ``synthesize_parallel(resume=True)`` replays
those lines instead of re-running the configs.

The journal is append-only: each line is written, flushed and fsynced in a
single call, so a kill can at worst truncate the final line — and
:meth:`PortfolioJournal.load` skips unparseable or wrong-schema lines
rather than failing the resume.  Keys are the same
:func:`~repro.parallel.cache.config_key` content hashes the memo cache
uses, so a journal never resurrects outcomes for a different protocol or
option set.

When the cache directory is a cluster-shared store, the journal stays
safe under concurrent writers too: every line is one ``os.write`` to an
``O_APPEND`` descriptor (POSIX appends of a single ``write`` never
interleave), each line carries the ``owner`` tag of the coordinator that
wrote it, and on load the *last* record per key wins — the same
last-writer-wins discipline the content-addressed cache uses.
"""

from __future__ import annotations

import json
import os

from .storeio import writer_tag

#: bump when the journaled record schema changes; old lines are ignored
JOURNAL_SCHEMA = 1


class PortfolioJournal:
    """Append-only JSONL journal of settled portfolio outcomes."""

    FILENAME = "portfolio_state.jsonl"

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)

    @classmethod
    def in_dir(cls, directory: str | os.PathLike) -> "PortfolioJournal":
        return cls(os.path.join(os.fspath(directory), cls.FILENAME))

    def reset(self) -> None:
        """Start a fresh race: truncate any journal from a previous sweep."""
        with open(self.path, "w"):
            pass

    def append(self, key: str, record: dict) -> None:
        """Durably append one settled outcome.

        One ``os.write`` of the whole line to an ``O_APPEND`` descriptor,
        then fsync: atomic against concurrent appenders on the shared
        store, durable against a kill the instant the call returns.
        """
        line = json.dumps(
            {"schema": JOURNAL_SCHEMA, "key": key, "owner": writer_tag(), **record}
        )
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (line + "\n").encode())
            os.fsync(fd)
        finally:
            os.close(fd)

    def load(self) -> dict[str, dict]:
        """Keyed records of every settled config; malformed lines (a kill can
        truncate the last one) and wrong-schema lines are skipped."""
        entries: dict[str, dict] = {}
        if not os.path.exists(self.path):
            return entries
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("schema") != JOURNAL_SCHEMA
                    or "key" not in record
                ):
                    continue
                entries[str(record["key"])] = record
        return entries

    def __len__(self) -> int:
        return len(self.load())
