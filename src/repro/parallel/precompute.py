"""Schedule-independent portfolio precompute (done once, shared by workers).

Every configuration of the paper's portfolio (Figure 1) runs the *same*
preprocessing before any schedule-specific work starts: build the protocol,
check closure of ``I``, find the input protocol's non-progress cycles, build
the C1 cache (``rcode_touches_i``), and run the full ``ComputeRanks``
backward BFS.  The naive fan-out repeated all of it in every worker; this
module hoists it into a one-shot parent-side :class:`PortfolioPrecompute`.

Shipping to workers:

* **fork** start method (Linux default) — the parent stashes the object in a
  module global before creating the pool; children inherit every page
  zero-copy via copy-on-write.  Nothing is pickled.
* **spawn** start method (Windows, macOS default) — children re-import the
  world, so the precompute is rebuilt from a picklable
  :class:`PrecomputeSpec`: the protocol comes back from the (cheap, picklable)
  builder callable, the small set-valued fields ride through pickle, and the
  big rank array is mapped from a ``multiprocessing.shared_memory`` segment
  created by the parent — one copy total, regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.add_convergence import SynthesisState
from ..core.heuristic import find_input_cycle_offenders
from ..core.ranking import RankingResult, compute_ranks
from ..core.weak import check_closure
from ..metrics.stats import SynthesisStats
from ..protocol.predicate import Predicate
from ..protocol.protocol import Protocol

GroupId = tuple[int, int, int]


@dataclass
class PortfolioPrecompute:
    """Everything ``add_strong_convergence`` needs that no schedule changes.

    Passed as the ``precompute=`` argument of
    :func:`repro.core.heuristic.add_strong_convergence`; closure is already
    verified, so the callee skips ``check_closure`` entirely.
    """

    protocol: Protocol
    invariant: Predicate
    #: input-cycle groups each run must remove (or refuse to, per its options)
    offenders: list[GroupId]
    #: per process: rcodes whose cylinder intersects I (constraint C1 cache)
    rcode_touches_i: list[np.ndarray]
    #: out-degree of every state under the *input* ``δp`` (pre-removal)
    out_counts: np.ndarray
    ranking: RankingResult


def precompute_portfolio(
    protocol: Protocol,
    invariant: Predicate,
    *,
    stats: SynthesisStats | None = None,
) -> PortfolioPrecompute:
    """Run the schedule-independent preprocessing once.

    Raises the same *complete negative answers* the heuristic would —
    :class:`~repro.core.exceptions.NotClosedError`,
    :class:`~repro.core.exceptions.UnresolvableCycleError` (groupmates-in-I
    case), :class:`~repro.core.exceptions.NoStabilizingVersionError` is left
    to the caller via ``ranking.admits_stabilization()`` — so a doomed
    portfolio fails fast in the parent instead of ``n_workers`` times.
    """
    stats = stats if stats is not None else SynthesisStats()
    with stats.tracer.span("portfolio.precompute"):
        check_closure(protocol, invariant)
        state = SynthesisState(protocol, invariant, stats)
        offenders = find_input_cycle_offenders(state)
        ranking = compute_ranks(protocol, invariant, stats=stats)
    return PortfolioPrecompute(
        protocol=protocol,
        invariant=invariant,
        offenders=offenders,
        rcode_touches_i=state.rcode_touches_i,
        out_counts=state.out_counts,
        ranking=ranking,
    )


# ----------------------------------------------------------------------
# spawn-safe shipping
# ----------------------------------------------------------------------


class SharedRankArray:
    """A rank array backed by ``multiprocessing.shared_memory``.

    The parent :meth:`create`\\ s the segment (one copy of the array);
    workers :meth:`attach` a read-only view by name.  The parent must keep
    the instance alive while workers run and :meth:`unlink` it afterwards.
    """

    def __init__(self, shm, shape: tuple[int, ...], dtype: str, *, owner: bool):
        self._shm = shm
        self.shape = tuple(shape)
        self.dtype = str(dtype)
        self._owner = owner

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedRankArray":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm, array.shape, array.dtype.str, owner=True)

    @classmethod
    def attach(
        cls, name: str, shape: Sequence[int], dtype: str
    ) -> "SharedRankArray":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        # Workers share the parent's resource tracker (the fd is inherited),
        # so attaching re-registers the same name idempotently; the parent's
        # unlink() after the race is the single point of cleanup.
        return cls(shm, tuple(shape), dtype, owner=False)

    def asarray(self) -> np.ndarray:
        view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=self._shm.buf)
        view.setflags(write=False)
        return view

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()


@dataclass
class PrecomputeSpec:
    """Picklable recipe for rebuilding a :class:`PortfolioPrecompute` in a
    spawn-started worker."""

    builder: Callable
    builder_args: tuple
    offenders: list[GroupId]
    rcode_touches_i: list[np.ndarray]
    pim_groups: list[list[tuple[int, int]]]
    max_rank: int
    rank_shm_name: str
    rank_shape: tuple[int, ...]
    rank_dtype: str
    #: workers keep their attached segment here so it stays mapped
    _attached: SharedRankArray | None = field(default=None, repr=False)

    @classmethod
    def from_precompute(
        cls,
        pre: PortfolioPrecompute,
        builder: Callable,
        builder_args: tuple,
        shared_rank: SharedRankArray,
    ) -> "PrecomputeSpec":
        return cls(
            builder=builder,
            builder_args=builder_args,
            offenders=list(pre.offenders),
            rcode_touches_i=[a.copy() for a in pre.rcode_touches_i],
            pim_groups=[sorted(g) for g in pre.ranking.pim_groups],
            max_rank=pre.ranking.max_rank,
            rank_shm_name=shared_rank.name,
            rank_shape=shared_rank.shape,
            rank_dtype=shared_rank.dtype,
        )

    def rebuild(self) -> PortfolioPrecompute:
        """Reconstruct the precompute inside a spawn worker (called once per
        worker process, from the pool initializer)."""
        protocol, invariant = self.builder(*self.builder_args)
        self._attached = SharedRankArray.attach(
            self.rank_shm_name, self.rank_shape, self.rank_dtype
        )
        ranking = RankingResult(
            protocol=protocol,
            invariant=invariant,
            rank=self._attached.asarray(),
            max_rank=self.max_rank,
            pim_groups=[set(g) for g in self.pim_groups],
        )
        return PortfolioPrecompute(
            protocol=protocol,
            invariant=invariant,
            offenders=list(self.offenders),
            rcode_touches_i=list(self.rcode_touches_i),
            out_counts=protocol.out_counts(),
            ranking=ranking,
        )
