"""Multi-writer-safe primitives for the shared on-disk store.

The synthesis cache and the cost model used to assume one writer per
directory; a cluster race points several coordinator hosts (and their
sweeps) at the *same* content-addressed store, so every write path here is
built for concurrency on a plain POSIX filesystem — no daemon, no locks
held across processes, no fsync-then-pray:

``atomic_write_json``
    write-temp-then-``os.replace``.  The temp name embeds host, pid and a
    random suffix, so two writers racing the same key never interleave
    bytes in one temp file; whoever replaces last wins with a *complete*
    document either way.

``sweep_partials``
    a writer killed between temp-write and rename leaves ``*.tmp.*``
    litter.  On store startup, partials older than ``max_age`` are
    quarantined to ``*.corrupt`` (evidence preserved, store kept clean);
    young ones are left alone — they may belong to a live writer on
    another host.

``StoreClaim``
    an ``O_CREAT | O_EXCL`` claim file is the portable "I am computing
    this key" mutex.  Claims are *leases*, not locks: a claim older than
    ``ttl`` belongs to a dead writer and is broken by the next claimant,
    so a crashed host can never wedge the store.
"""

from __future__ import annotations

import json
import os
import socket
import time

#: partials younger than this may belong to a live writer and are spared
PARTIAL_MAX_AGE = 60.0

#: a claim untouched for this long belongs to a dead writer and is broken
CLAIM_TTL = 600.0


def writer_tag() -> str:
    """Host- and process-unique tag embedded in temp names and claims."""
    return f"{socket.gethostname()}.{os.getpid()}"


def atomic_write_json(path: str | os.PathLike, obj) -> None:
    """Serialise ``obj`` to ``path`` atomically and concurrently safely.

    The temp file lives in the target directory (same filesystem, so the
    rename is atomic) under a writer-unique name; it is flushed and fsynced
    before the rename so a torn final document cannot survive a crash.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{writer_tag()}.{os.urandom(4).hex()}"
    try:
        with open(tmp, "w") as handle:
            json.dump(obj, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def sweep_partials(
    directory: str | os.PathLike, max_age: float = PARTIAL_MAX_AGE
) -> int:
    """Quarantine stale ``*.tmp.*`` partials under ``directory``.

    Returns how many were moved to ``*.corrupt``.  Files younger than
    ``max_age`` seconds are skipped — they may be a live concurrent
    writer's in-flight temp.
    """
    directory = os.fspath(directory)
    now = time.time()
    swept = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if ".tmp." not in name or name.endswith(".corrupt"):
            continue
        path = os.path.join(directory, name)
        try:
            if now - os.path.getmtime(path) < max_age:
                continue
            os.replace(path, path + ".corrupt")
        except OSError:
            continue
        swept += 1
    return swept


class StoreClaim:
    """``O_EXCL`` claim files: advisory per-key write leases for the store.

    ``acquire(key)`` atomically creates ``<key>.claim`` recording who holds
    it and when; a second claimant is refused until ``release`` — unless
    the claim has gone stale (holder died), in which case it is broken and
    re-acquired.  Claims only guard *redundant work and write races*; the
    store stays correct without them because every payload write is atomic.
    """

    SUFFIX = ".claim"

    def __init__(self, directory: str | os.PathLike, ttl: float = CLAIM_TTL):
        self.directory = os.fspath(directory)
        self.ttl = ttl
        self.broken_stale = 0
        self._held: set[str] = set()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + self.SUFFIX)

    def acquire(self, key: str) -> bool:
        """True when this process now holds the claim for ``key``."""
        path = self._path(key)
        payload = json.dumps(
            {"owner": writer_tag(), "time": time.time()}
        ).encode()
        for _ in range(2):  # second round only after breaking a stale claim
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                if not self._break_if_stale(path):
                    return False
                continue
            except OSError:
                return False
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            self._held.add(key)
            return True
        return False

    def _break_if_stale(self, path: str) -> bool:
        """Remove a claim whose holder stopped refreshing it; True if broken."""
        try:
            age = time.time() - os.path.getmtime(path)
        except OSError:
            return True  # vanished: the holder released it, retry acquire
        if age < self.ttl:
            return False
        try:
            os.remove(path)
        except OSError:
            return False
        self.broken_stale += 1
        return True

    def release(self, key: str) -> None:
        self._held.discard(key)
        try:
            os.remove(self._path(key))
        except OSError:
            pass

    def release_all(self) -> None:
        for key in list(self._held):
            self.release(key)

    def sweep_stale(self) -> int:
        """Release every stale claim in the directory (startup hygiene);
        returns how many were broken."""
        broken = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(self.SUFFIX):
                continue
            if self._break_if_stale(os.path.join(self.directory, name)):
                broken += 1
        return broken
