"""Parallel portfolio synthesis (paper Figure 1).

"For each schedule, we can instantiate one instance of our heuristic on a
separate machine" — here, on worker *processes* via ``multiprocessing``.
Workers race over the configuration portfolio; the first verified success
wins and the rest are cancelled.

Protocols are rebuilt inside each worker from a picklable spec (a builder
callable plus arguments) rather than shipping numpy-heavy objects through
pickle.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.heuristic import HeuristicOptions
from ..core.synthesizer import SynthesisConfig, default_portfolio
from ..metrics.stats import SynthesisStats

#: builder: () -> (protocol, invariant); must be a picklable top-level callable
Builder = Callable[[], tuple]


@dataclass
class ParallelOutcome:
    """Result of one worker: enough to reconstruct the winning protocol."""

    config: SynthesisConfig
    success: bool
    pss_groups: list[set[tuple[int, int]]] | None
    remaining_deadlocks: int
    timers: dict[str, float]


def _worker(args) -> ParallelOutcome:
    builder, builder_args, config = args
    protocol, invariant = builder(*builder_args)
    from ..core.heuristic import add_strong_convergence
    from ..verify.stabilization import check_solution

    stats = SynthesisStats()
    result = add_strong_convergence(
        protocol,
        invariant,
        schedule=config.schedule,
        options=config.options,
        stats=stats,
    )
    success = result.success
    if success:
        success = check_solution(protocol, result.protocol, invariant).ok
    return ParallelOutcome(
        config=config,
        success=success,
        pss_groups=[set(g) for g in result.protocol.groups] if success else None,
        remaining_deadlocks=(
            0 if success else result.remaining_deadlocks.count()
        ),
        timers=dict(stats.timers),
    )


def synthesize_parallel(
    builder: Builder,
    builder_args: tuple = (),
    *,
    configs: Sequence[SynthesisConfig] | None = None,
    n_workers: int | None = None,
    base_options: HeuristicOptions | None = None,
) -> tuple[ParallelOutcome, list[ParallelOutcome]]:
    """Race the portfolio across worker processes.

    Returns ``(winner_or_best, all_completed_outcomes)``.  Workers that were
    still running when a success arrived are not awaited (``imap_unordered``
    short-circuit), mirroring "first machine to find a solution wins".
    """
    protocol, _ = builder(*builder_args)
    config_list = (
        list(configs)
        if configs is not None
        else default_portfolio(protocol.n_processes, base_options=base_options)
    )
    if not config_list:
        raise ValueError("empty portfolio")
    n_workers = n_workers or min(len(config_list), mp.cpu_count())
    jobs = [(builder, builder_args, c) for c in config_list]
    completed: list[ParallelOutcome] = []
    winner: ParallelOutcome | None = None
    ctx = mp.get_context("fork")
    with ctx.Pool(processes=n_workers) as pool:
        for outcome in pool.imap_unordered(_worker, jobs):
            completed.append(outcome)
            if outcome.success:
                winner = outcome
                pool.terminate()
                break
    if winner is None:
        winner = min(completed, key=lambda o: o.remaining_deadlocks)
    return winner, completed
