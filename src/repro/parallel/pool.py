"""Parallel portfolio synthesis (paper Figure 1).

"For each schedule, we can instantiate one instance of our heuristic on a
separate machine" — here, on worker *processes* via ``multiprocessing``.
Workers race over the configuration portfolio; the first verified success
wins and the rest are cancelled.

Protocols are rebuilt inside each worker from a picklable spec (a builder
callable plus arguments) rather than shipping numpy-heavy objects through
pickle.

With ``trace_dir`` set, every worker streams its own JSONL trace
(``worker_<index>.jsonl``); because lines are flushed per event, a loser
cancelled mid-run still leaves a readable partial trace.  The parent merges
whatever exists into ``merged.jsonl`` after the race, so the winning
schedule's profile survives cancellation of everything else.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.heuristic import HeuristicOptions
from ..core.synthesizer import SynthesisConfig, default_portfolio
from ..metrics.stats import SynthesisStats
from ..trace.tracer import NULL_TRACER, Tracer

#: builder: () -> (protocol, invariant); must be a picklable top-level callable
Builder = Callable[[], tuple]


@dataclass
class ParallelOutcome:
    """Result of one worker: enough to reconstruct the winning protocol."""

    config: SynthesisConfig
    success: bool
    pss_groups: list[set[tuple[int, int]]] | None
    remaining_deadlocks: int
    timers: dict[str, float]
    counters: dict[str, int] = field(default_factory=dict)
    #: this worker's JSONL trace file (None when tracing was off)
    trace_path: str | None = None


def _worker(args) -> ParallelOutcome:
    builder, builder_args, config, index, trace_path = args
    from ..core.heuristic import add_strong_convergence
    from ..verify.stabilization import check_solution

    tracer = (
        Tracer(trace_path, worker=index, config=config.describe())
        if trace_path is not None
        else NULL_TRACER
    )
    try:
        protocol, invariant = builder(*builder_args)
        tracer.event("worker.start", protocol=protocol.name)
        stats = SynthesisStats(tracer=tracer)
        result = add_strong_convergence(
            protocol,
            invariant,
            schedule=config.schedule,
            options=config.options,
            stats=stats,
        )
        success = result.success
        if success:
            with tracer.span("verify.check_solution"):
                success = check_solution(protocol, result.protocol, invariant).ok
        tracer.event("worker.done", success=success)
        return ParallelOutcome(
            config=config,
            success=success,
            pss_groups=(
                [set(g) for g in result.protocol.groups] if success else None
            ),
            remaining_deadlocks=(
                0 if success else result.remaining_deadlocks.count()
            ),
            timers=dict(stats.timers),
            counters=dict(stats.counters),
            trace_path=trace_path,
        )
    finally:
        tracer.close()


def merge_worker_traces(trace_dir: str | os.PathLike) -> str | None:
    """Merge every ``worker_*.jsonl`` under ``trace_dir`` into
    ``merged.jsonl``; returns its path (None when no worker files exist)."""
    from ..trace.report import merge_traces

    trace_dir = os.fspath(trace_dir)
    paths = sorted(
        os.path.join(trace_dir, name)
        for name in os.listdir(trace_dir)
        if name.startswith("worker_") and name.endswith(".jsonl")
    )
    if not paths:
        return None
    merged = os.path.join(trace_dir, "merged.jsonl")
    merge_traces(paths, merged)
    return merged


def synthesize_parallel(
    builder: Builder,
    builder_args: tuple = (),
    *,
    configs: Sequence[SynthesisConfig] | None = None,
    n_workers: int | None = None,
    base_options: HeuristicOptions | None = None,
    trace_dir: str | os.PathLike | None = None,
) -> tuple[ParallelOutcome, list[ParallelOutcome]]:
    """Race the portfolio across worker processes.

    Returns ``(winner_or_best, all_completed_outcomes)``.  Workers that were
    still running when a success arrived are terminated (``pool.terminate``
    after the ``imap_unordered`` short-circuit), mirroring "first machine to
    find a solution wins".  With ``trace_dir``, each worker writes
    ``trace_dir/worker_<index>.jsonl`` and the parent merges all surviving
    files — winner and cancelled losers alike — into
    ``trace_dir/merged.jsonl``.
    """
    protocol, _ = builder(*builder_args)
    config_list = (
        list(configs)
        if configs is not None
        else default_portfolio(protocol.n_processes, base_options=base_options)
    )
    if not config_list:
        raise ValueError("empty portfolio")
    n_workers = n_workers or min(len(config_list), mp.cpu_count())
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    jobs = [
        (
            builder,
            builder_args,
            config,
            index,
            (
                os.path.join(os.fspath(trace_dir), f"worker_{index}.jsonl")
                if trace_dir is not None
                else None
            ),
        )
        for index, config in enumerate(config_list)
    ]
    completed: list[ParallelOutcome] = []
    winner: ParallelOutcome | None = None
    ctx = mp.get_context("fork")
    with ctx.Pool(processes=n_workers) as pool:
        for outcome in pool.imap_unordered(_worker, jobs):
            completed.append(outcome)
            if outcome.success:
                winner = outcome
                pool.terminate()
                break
    if trace_dir is not None:
        merge_worker_traces(trace_dir)
    if winner is None:
        winner = min(completed, key=lambda o: o.remaining_deadlocks)
    return winner, completed
