"""Parallel portfolio synthesis (paper Figure 1): a fault-tolerant race.

"For each schedule, we can instantiate one instance of our heuristic on a
separate machine" — here, on worker *processes*.  Workers race over the
configuration portfolio; the first verified success wins and the rest are
cancelled.  One machine per schedule only pays off at scale if a single
lost machine cannot take down the whole race, so the runtime is built for
survivability (see ``docs/ARCHITECTURE.md``, "Fault tolerance"):

* **supervised dispatch** — jobs travel to dedicated workers behind a
  pluggable :mod:`repro.parallel.transport` (local ``Process``+``Pipe``
  slots by default; remote ``stsyn worker`` endpoints over TCP with
  ``worker_endpoints=...``), so a worker killed by the OOM killer or a
  segfault costs exactly its own config: the parent sees the channel die,
  requeues the config with capped exponential backoff, replaces the worker
  and keeps the race going;
* **leases** — a remote worker cannot signal death by pipe EOF (a network
  partition delivers silence), so every dispatched config carries a lease:
  the worker heartbeats while computing, missed heartbeats past
  ``lease_timeout`` expire the lease and re-dispatch the config (same
  capped backoff), and a *late* result from the expired lease is accepted
  only if its convergence certificate independently re-checks
  (``transport.duplicate_results`` / ``transport.duplicates_accepted``);
  when remote capacity is lost the race degrades to local slots
  (``transport.degraded_to_local``) rather than stalling;
* **watchdog** — a per-config *hard* deadline (distinct from the
  cooperative ``soft_deadline`` that workers poll themselves): a worker
  wedged past it is terminated and replaced, its config requeued.  The
  effective limit is ``hard_deadline + options.stall_seconds`` so the
  simulated slow machines of the paper's heterogeneous setting are not
  penalised for their stall;
* **checkpoint/resume** — with ``cache_dir`` set, every settled outcome is
  journaled to ``portfolio_state.jsonl`` (:mod:`repro.parallel.journal`);
  ``resume=True`` replays journaled configs instead of re-running them
  after a SIGKILL or power loss;
* **fault injection** — a :class:`repro.faults.FaultPlan` (or the
  ``REPRO_FAULT_PLAN`` environment variable) deterministically crashes or
  hangs targeted workers, corrupts cache entries and drops trace files, so
  all of the above is testable in CI.

Crash/kill/retry activity flows into the parent trace as the
``portfolio.worker_crashes`` / ``portfolio.watchdog_kills`` /
``portfolio.retries`` counters, rendered by ``stsyn trace-report``.

The other cooperating parts are unchanged from the shared-precompute
engine: :mod:`repro.parallel.precompute` (one-shot schedule-independent
work, zero-copy under fork, shared-memory rank array under spawn),
:mod:`repro.parallel.scheduler` (cost-ordered queue, soft deadlines,
cooperative :class:`CancelToken`) and :mod:`repro.parallel.cache` (on-disk
memo with quarantine of corrupt entries).  With ``trace_dir`` set, every
worker attempt streams its own JSONL trace and the parent writes
``portfolio.jsonl``; whatever survives merges into ``merged.jsonl``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import time
from collections import deque
from contextlib import ExitStack
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Sequence

from ..core.exceptions import PortfolioError, TransportError
from ..core.heuristic import HeuristicOptions
from ..core.synthesizer import SynthesisConfig, default_portfolio
from ..faults import runtime as fault_runtime
from ..faults.runtime import FaultPlan
from ..metrics.stats import SynthesisStats
from ..trace.tracer import NULL_TRACER, Tracer
from .cache import SynthesisCache, config_key, protocol_fingerprint
from .journal import PortfolioJournal
from .precompute import (
    PortfolioPrecompute,
    PrecomputeSpec,
    SharedRankArray,
    precompute_portfolio,
)
from .scheduler import CancelToken, CostModel, order_portfolio
from .transport import (
    LocalProcessTransport,
    Message,
    TcpTransport,
    WorkerChannel,
    builder_ref,
    outcome_from_payload,
)

#: builder: () -> (protocol, invariant); must be a picklable top-level callable
Builder = Callable[[], tuple]

#: name of the parent-side trace file inside ``trace_dir``
PARENT_TRACE = "portfolio.jsonl"

#: supervisor poll interval: result wait, liveness and watchdog checks
POLL_INTERVAL = 0.05


@dataclass
class ParallelOutcome:
    """Result of one worker: enough to reconstruct the winning protocol."""

    config: SynthesisConfig
    success: bool
    pss_groups: list[set[tuple[int, int]]] | None
    remaining_deadlocks: int
    timers: dict[str, float]
    counters: dict[str, int] = field(default_factory=dict)
    #: this worker's JSONL trace file (None when tracing was off)
    trace_path: str | None = None
    #: True when the run stopped cooperatively instead of completing
    cancelled: bool = False
    #: why: "cancelled" (a winner verified first) or "deadline" (over budget)
    cancel_reason: str | None = None
    #: True when the outcome came from the on-disk cache (no worker ran)
    cached: bool = False
    #: worker wall-clock in seconds (0.0 for cached outcomes)
    duration: float = 0.0
    #: True when every attempt died (crash or watchdog kill) — the config
    #: was retried ``retries`` times and never produced an answer
    crashed: bool = False
    #: how many times the config was requeued after a crash/kill
    retries: int = 0
    #: True when the outcome was replayed from the resume journal
    resumed: bool = False
    #: JSON payload of the worker's :class:`ConvergenceCertificate` (None
    #: when the run failed or emission was unavailable); lets the parent —
    #: and later cache/journal consumers — re-establish trust in the
    #: recorded ``pss_groups`` without re-running ``check_solution``
    certificate: dict | None = None


# ----------------------------------------------------------------------
# worker-process state (set once per worker by the initializer)
# ----------------------------------------------------------------------

#: per-worker context: event, soft deadline, builder, precompute
_WORKER_CTX: dict | None = None

#: parent-side stash read by fork children through copy-on-write; must be
#: populated *before* workers spawn and cleared after the race
_FORK_PRECOMPUTE: PortfolioPrecompute | None = None


def _set_fork_precompute(pre: PortfolioPrecompute | None) -> None:
    global _FORK_PRECOMPUTE
    _FORK_PRECOMPUTE = pre


def _init_worker(
    event, soft_deadline, builder, builder_args, spec, fault_plan=None
) -> None:
    """Runs once in every worker process.

    Under fork the precompute is inherited zero-copy via
    :data:`_FORK_PRECOMPUTE`; under spawn it is rebuilt from the picklable
    ``spec`` (rank array attached from shared memory).  ``spec`` and the
    stash are both ``None`` when precompute sharing is disabled, in which
    case each job rebuilds everything from the builder (the pre-PR-3
    behaviour, kept for benchmarking the speedup honestly).
    """
    global _WORKER_CTX
    if spec is not None:
        precompute = spec.rebuild()
    else:
        precompute = _FORK_PRECOMPUTE
    _WORKER_CTX = {
        "event": event,
        "soft_deadline": soft_deadline,
        "builder": builder,
        "builder_args": builder_args,
        "precompute": precompute,
    }
    fault_runtime.install_fault_plan(fault_plan)


def _worker(args) -> ParallelOutcome:
    config, index, trace_path, attempt = args
    from ..cert import CertificateError
    from ..core.exceptions import SynthesisCancelled
    from ..core.heuristic import add_strong_convergence
    from ..verify.stabilization import check_solution

    fault_runtime.set_fault_context(config.describe(), attempt)
    ctx = _WORKER_CTX or {}
    precompute = ctx.get("precompute")
    cancel = CancelToken.with_budget(
        event=ctx.get("event"), budget=ctx.get("soft_deadline")
    )
    tracer = (
        Tracer(
            trace_path, worker=index, attempt=attempt, config=config.describe()
        )
        if trace_path is not None
        else NULL_TRACER
    )
    t0 = time.perf_counter()
    try:
        if precompute is not None:
            protocol, invariant = precompute.protocol, precompute.invariant
        else:
            builder, builder_args = ctx["builder"], ctx["builder_args"]
            protocol, invariant = builder(*builder_args)
        tracer.event(
            "worker.start",
            protocol=protocol.name,
            shared_precompute=precompute is not None,
        )
        fault_runtime.fault_point("worker.start")
        stats = SynthesisStats(tracer=tracer)
        try:
            result = add_strong_convergence(
                protocol,
                invariant,
                schedule=config.schedule,
                options=config.options,
                stats=stats,
                precompute=precompute,
                cancel=cancel,
            )
        except SynthesisCancelled as exc:
            tracer.event("worker.cancelled", reason=exc.reason)
            return ParallelOutcome(
                config=config,
                success=False,
                pss_groups=None,
                remaining_deadlocks=-1,
                timers=dict(stats.timers),
                counters=dict(stats.counters),
                trace_path=trace_path,
                cancelled=True,
                cancel_reason=exc.reason,
                duration=time.perf_counter() - t0,
                retries=attempt,
            )
        success = result.success
        if success:
            with tracer.span("verify.check_solution"):
                success = check_solution(protocol, result.protocol, invariant).ok
        certificate = None
        if success:
            # A failed emission is not a failed synthesis: the outcome simply
            # ships without a certificate and trust paths fall back to the
            # full (slower) check_solution re-verification.
            with tracer.span("cert.emit"):
                try:
                    certificate = result.certificate().to_payload()
                except CertificateError as exc:
                    tracer.event("cert.emit_failed", error=str(exc))
                else:
                    tracer.count("cert.emitted")
        tracer.event("worker.done", success=success)
        return ParallelOutcome(
            config=config,
            success=success,
            pss_groups=(
                [set(g) for g in result.protocol.groups] if success else None
            ),
            remaining_deadlocks=(
                0 if success else result.remaining_deadlocks.count()
            ),
            timers=dict(stats.timers),
            counters=dict(stats.counters),
            trace_path=trace_path,
            duration=time.perf_counter() - t0,
            retries=attempt,
            certificate=certificate,
        )
    finally:
        tracer.close()


class _WorkerError:
    """Envelope for an exception raised inside a worker.

    Complete negative answers (``NotClosedError``,
    ``NoStabilizingVersionError``, ...) and genuine bugs must abort the race
    and re-raise in the parent — they are answers, not infrastructure
    failures, so they are never retried.
    """

    __slots__ = ("exception",)

    def __init__(self, exception: BaseException):
        self.exception = exception


def _worker_loop(
    conn, event, soft_deadline, builder, builder_args, spec, fault_plan
) -> None:
    """Entry point of one supervised local worker process.

    Receives job dicts over its pipe (the transport layer's job shape:
    ``lease_id``/``config``/``index``/``attempt``/``trace_path``), runs
    them and sends ``(lease_id, outcome)`` back; a ``None`` job is the
    shutdown sentinel.  Exceptions travel back wrapped in
    :class:`_WorkerError` so the parent can re-raise them.
    """
    _init_worker(event, soft_deadline, builder, builder_args, spec, fault_plan)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:
            return
        try:
            message = _worker(
                (job["config"], job["index"], job["trace_path"], job["attempt"])
            )
        except Exception as exc:
            message = _WorkerError(exc)
        try:
            conn.send((job["lease_id"], message))
        except (BrokenPipeError, OSError):
            return


def merge_worker_traces(trace_dir: str | os.PathLike) -> str | None:
    """Merge ``portfolio.jsonl`` (parent) and every ``worker_*.jsonl`` under
    ``trace_dir`` into ``merged.jsonl``; returns its path (None when no
    trace files exist).  Honours an active fault plan's ``drop_trace_file``
    (the drill for a worker trace lost to a full disk or node failure)."""
    from ..trace.report import merge_traces

    trace_dir = os.fspath(trace_dir)
    paths = []
    for name in sorted(os.listdir(trace_dir)):
        if not (name.startswith("worker_") and name.endswith(".jsonl")):
            continue
        path = os.path.join(trace_dir, name)
        if fault_runtime.should_drop_trace(name):
            try:
                os.remove(path)
            except OSError:
                pass
            continue
        paths.append(path)
    parent = os.path.join(trace_dir, PARENT_TRACE)
    if os.path.exists(parent):
        paths.insert(0, parent)
    if not paths:
        return None
    merged = os.path.join(trace_dir, "merged.jsonl")
    merge_traces(paths, merged)
    return merged


def _clear_stale_traces(trace_dir: str | os.PathLike) -> None:
    """Remove ``worker_*.jsonl`` / ``merged.jsonl`` left by a previous run in
    the same directory, so :func:`merge_worker_traces` cannot resurrect
    another race's traces into this run's ``merged.jsonl``."""
    trace_dir = os.fspath(trace_dir)
    for name in os.listdir(trace_dir):
        if name == "merged.jsonl" or (
            name.startswith("worker_") and name.endswith(".jsonl")
        ):
            try:
                os.remove(os.path.join(trace_dir, name))
            except OSError:
                pass


def _get_mp_context(start_method: str | None):
    """The multiprocessing context: fork where available (zero-copy
    precompute), spawn elsewhere (Windows, macOS default)."""
    available = mp.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in available else "spawn"
    elif start_method not in available:
        raise ValueError(
            f"start method {start_method!r} unavailable (have {available})"
        )
    return mp.get_context(start_method), start_method


def _pick_best(outcomes: Sequence[ParallelOutcome]) -> ParallelOutcome:
    """Best failure: fewest remaining deadlocks among completed runs;
    crashed-out and cancelled runs (unknown deadlock count) only as a last
    resort.  Raises :class:`PortfolioError` when nothing survived at all."""
    if not outcomes:
        raise PortfolioError(
            "portfolio produced no reportable outcome: every run was "
            "race-cancelled or lost before completing"
        )
    finished = [o for o in outcomes if not o.cancelled and not o.crashed]
    if finished:
        return min(finished, key=lambda o: o.remaining_deadlocks)
    crashed = [o for o in outcomes if o.crashed]
    if crashed:
        return crashed[0]
    return outcomes[0]


# ----------------------------------------------------------------------
# the supervisor: crash isolation, watchdog, capped retries
# ----------------------------------------------------------------------


@dataclass
class _Job:
    config: SynthesisConfig
    index: int
    attempt: int = 0
    #: monotonic instant before which the job must not be dispatched
    eligible_at: float = 0.0


class _Slot:
    """One supervised worker slot: its channel, lease and current assignment."""

    __slots__ = ("channel", "job", "started", "last_beat", "lease_id")

    def __init__(self, channel: WorkerChannel):
        self.channel: WorkerChannel | None = channel
        self.job: _Job | None = None
        self.started = 0.0
        #: last proof of life for the current lease (heartbeat or dispatch)
        self.last_beat = 0.0
        self.lease_id: str | None = None


def _retry_delay(
    attempt: int, index: int, base: float, cap: float
) -> float:
    """Capped exponential backoff with deterministic jitter (no shared RNG:
    the jitter is a hash of (job index, attempt), so retries of different
    configs spread out and tests replay identically)."""
    delay = min(base * (2.0 ** attempt), cap)
    jitter = ((index * 2654435761 + attempt * 40503) % 1000) / 1000.0
    return delay * (1.0 + 0.25 * jitter)


class _Supervisor:
    """Supervised dispatch loop replacing the bare ``Pool.imap_unordered``.

    Each job goes to a dedicated worker channel obtained from a transport;
    a dead channel (pipe EOF, dead process, socket error) requeues its
    config with backoff (up to ``max_retries``) and the transport supplies
    a replacement.  A worker running one config past the hard deadline is
    killed by the watchdog and handled the same way.

    Channels that heartbeat (remote TCP workers) additionally run the
    **lease protocol**: a busy slot whose last heartbeat is older than
    ``lease_timeout`` has its lease expired — the config is re-dispatched
    with the same backoff, while the silent channel moves to the
    ``suspects`` list and keeps being pumped.  A late result from an
    expired lease (or a retransmitted duplicate frame) is counted as
    ``transport.duplicate_results`` and accepted only when it claims
    success *and* ``verify_duplicate`` independently re-establishes trust
    (certificate check); everything else is discarded.

    When a winner verifies, losers get ``cancel_grace`` seconds to exit
    cooperatively (keeping their traces) before shutdown terminates
    whatever is left.
    """

    def __init__(
        self,
        transport,
        n_workers: int,
        jobs: Sequence[_Job],
        *,
        event,
        tracer,
        trace_path_for: Callable[[int, int], str | None],
        hard_deadline: float | None,
        max_retries: int,
        retry_backoff: float,
        retry_backoff_cap: float,
        cancel_grace: float,
        on_result: Callable[[ParallelOutcome], None],
        lease_timeout: float = 10.0,
        verify_duplicate: Callable[[ParallelOutcome], bool] | None = None,
    ):
        self.transport = transport
        self.n_workers = n_workers
        self.pending: deque[_Job] = deque(jobs)
        self.event = event
        self.tracer = tracer
        self.trace_path_for = trace_path_for
        self.hard_deadline = hard_deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.cancel_grace = cancel_grace
        self.on_result = on_result
        self.lease_timeout = lease_timeout
        self.verify_duplicate = verify_duplicate
        self.slots: list[_Slot] = []
        #: every lease ever granted (lease id -> job) — kept after settling
        #: so late duplicate results can still be matched to their config
        self.leases: dict[str, _Job] = {}
        #: settled outcome per job index (result recorded or crashed out)
        self.settled: dict[int, ParallelOutcome] = {}
        #: expired-lease channels, still pumped for their late result
        self.suspects: list[WorkerChannel] = []
        self.completed: list[ParallelOutcome] = []
        self.winner: ParallelOutcome | None = None
        self.error: BaseException | None = None
        self.grace_deadline = 0.0
        self.suspect_deadline: float | None = None
        self._lease_seq = 0

    # -- lifecycle -----------------------------------------------------
    def run(self) -> tuple[ParallelOutcome | None, list[ParallelOutcome]]:
        self.slots = [
            _Slot(channel)
            for channel in self.transport.open(
                min(self.n_workers, len(self.pending))
            )
        ]
        try:
            while not self._done():
                self._dispatch()
                self._collect()
                self._check_liveness()
        finally:
            self._shutdown()
        if self.error is not None:
            raise self.error
        return self.winner, self.completed

    def _done(self) -> bool:
        if self.error is not None:
            return True
        busy = any(s.job is not None for s in self.slots)
        if self.winner is not None:
            return not busy or time.monotonic() >= self.grace_deadline
        if busy or self.pending:
            self.suspect_deadline = None
            return False
        if self.suspects:
            # everything settled without a winner, but an expired-lease
            # worker may still deliver a verifiable late result: linger
            # one more lease period before giving up on the suspects
            now = time.monotonic()
            if self.suspect_deadline is None:
                self.suspect_deadline = now + max(
                    self.lease_timeout, 2 * POLL_INTERVAL
                )
            return now >= self.suspect_deadline
        return True

    @property
    def _racing(self) -> bool:
        return self.winner is None and self.error is None

    # -- dispatch ------------------------------------------------------
    def _pop_eligible(self, now: float) -> _Job | None:
        for i, job in enumerate(self.pending):
            if job.eligible_at <= now:
                del self.pending[i]
                return job
        return None

    def _dispatch(self) -> None:
        if not self._racing:
            return
        now = time.monotonic()
        for slot in self.slots:
            if slot.channel is None or slot.job is not None:
                continue
            job = self._pop_eligible(now)
            if job is None:
                return
            self._lease_seq += 1
            lease_id = f"lease-{self._lease_seq}"
            slot.job = job
            slot.lease_id = lease_id
            slot.started = now
            slot.last_beat = now
            self.leases[lease_id] = job
            remote = slot.channel.remote
            payload = {
                "lease_id": lease_id,
                "config": job.config,
                "index": job.index,
                "attempt": job.attempt,
                # a remote worker cannot write into this host's trace dir
                "trace_path": (
                    None if remote
                    else self.trace_path_for(job.index, job.attempt)
                ),
            }
            try:
                slot.channel.send_job(payload)
            except TransportError:
                self._fail(slot, kind="crash")
                continue
            if remote:
                self.tracer.count("transport.remote_dispatches")

    # -- results -------------------------------------------------------
    def _collect(self) -> None:
        slot_map = {
            s.channel.wait_handle(): s
            for s in self.slots
            if s.channel is not None and s.job is not None
        }
        suspect_map = {c.wait_handle(): c for c in self.suspects}
        handles = list(slot_map) + list(suspect_map)
        if not handles:
            # only backoff-delayed retries (or nothing) remain runnable
            time.sleep(POLL_INTERVAL)
            return
        for handle in mp_connection.wait(handles, timeout=POLL_INTERVAL):
            slot = slot_map.get(handle)
            if slot is not None:
                try:
                    messages = slot.channel.pump()
                except TransportError:
                    self._fail(slot, kind="crash")
                    continue
                for message in messages:
                    self._on_message(slot, message)
                    if self.error is not None:
                        return
            else:
                channel = suspect_map[handle]
                try:
                    messages = channel.pump()
                except TransportError:
                    self._drop_suspect(channel)
                    continue
                for message in messages:
                    self._on_stale(message)

    def _decode(self, message: Message, job: _Job) -> ParallelOutcome:
        if message.outcome is not None:
            return message.outcome
        return outcome_from_payload(job.config, message.payload or {})

    def _on_message(self, slot: _Slot, message: Message) -> None:
        if message.kind == "heartbeat":
            if message.lease_id == slot.lease_id:
                slot.last_beat = time.monotonic()
            return
        if message.lease_id != slot.lease_id:
            # a frame for a lease this slot no longer holds — e.g. the
            # second copy of a retransmitted result
            self._on_stale(message)
            return
        job = slot.job
        slot.job = None
        slot.lease_id = None
        if message.kind == "error":
            exc = message.error
            if isinstance(exc, TransportError):
                # infrastructure refusal (busy/confused worker), not an
                # answer: treat like a crash so the config is retried
                slot.job = job
                self._fail(slot, kind="crash")
                return
            self.error = exc
            return
        if job.index in self.settled:
            # the config already settled via a duplicate/re-dispatch race
            self.tracer.count("transport.duplicate_results")
            return
        outcome = self._decode(message, job)
        self.settled[job.index] = outcome
        self._record(outcome)

    def _on_stale(self, message: Message) -> None:
        """Adjudicate a result that arrived after its lease expired (or a
        retransmitted duplicate): count it, and accept a claimed success
        only after independent re-verification."""
        if message.kind != "result":
            return  # heartbeats of an expired lease: too late
        job = self.leases.get(message.lease_id)
        if job is None:
            return
        self.tracer.count("transport.duplicate_results")
        self.tracer.event(
            "transport.duplicate_result",
            config=job.config.describe(),
            lease=message.lease_id,
        )
        prior = self.settled.get(job.index)
        if prior is not None and not (prior.crashed or prior.cancelled):
            return  # the config already has a real answer: pure duplicate
        if self.winner is not None and prior is not None:
            return  # race already decided and this config settled: ignore
        outcome = self._decode(message, job)
        if (
            outcome.success
            and self.verify_duplicate is not None
            and self.verify_duplicate(outcome)
        ):
            # the late worker's answer re-verified independently: accept
            # it, upgrading a crashed-out settle from the expired lease
            self.tracer.count("transport.duplicates_accepted")
            if prior is not None and prior in self.completed:
                self.completed.remove(prior)
            self.settled[job.index] = outcome
            # the re-dispatched copy (if still queued) is now redundant
            self.pending = deque(
                j for j in self.pending if j.index != job.index
            )
            self._record(outcome)
        else:
            self.tracer.event(
                "transport.duplicate_discarded",
                config=job.config.describe(),
                success=outcome.success,
            )

    def _record(self, outcome: ParallelOutcome) -> None:
        if outcome.cancelled and outcome.cancel_reason == "cancelled":
            self.tracer.count("portfolio.losers_cancelled")
            return
        self.completed.append(outcome)
        self.on_result(outcome)
        if outcome.success and self.winner is None:
            self.winner = outcome
            self.event.set()
            # local losers see the shared event; remote losers need the
            # cancel told to them over the wire
            for slot in self.slots:
                if (
                    slot.channel is not None
                    and slot.channel.remote
                    and slot.job is not None
                ):
                    slot.channel.send_cancel()
            # grace window: losers exit cooperatively at their next
            # pass/rank boundary and keep their traces
            self.grace_deadline = time.monotonic() + self.cancel_grace

    # -- crash isolation, watchdog + lease expiry ----------------------
    def _check_liveness(self) -> None:
        now = time.monotonic()
        for slot in self.slots:
            if slot.channel is None or slot.job is None:
                continue
            if not slot.channel.alive():
                self._fail(slot, kind="crash")
            elif (
                slot.channel.supports_heartbeat
                and now - slot.last_beat > self.lease_timeout
            ):
                self._fail(slot, kind="lease")
            elif self._racing and self.hard_deadline is not None:
                limit = (
                    self.hard_deadline + slot.job.config.options.stall_seconds
                )
                if now - slot.started > limit:
                    self._fail(slot, kind="watchdog")

    def _fail(self, slot: _Slot, *, kind: str) -> None:
        job, started = slot.job, slot.started
        channel = slot.channel
        slot.job = None
        slot.lease_id = None
        slot.channel = None
        if kind == "lease":
            self.tracer.count("transport.lease_expiries")
            self.tracer.event(
                "transport.lease_expired",
                config=job.config.describe(),
                attempt=job.attempt,
                worker=channel.worker_id,
            )
            # the worker may only be partitioned away, still computing:
            # keep pumping its socket so a late result can be adjudicated
            self.suspects.append(channel)
        elif kind == "watchdog":
            self.tracer.count("portfolio.watchdog_kills")
            self.tracer.event(
                "portfolio.watchdog_kill",
                config=job.config.describe(),
                attempt=job.attempt,
            )
            channel.kill()
            channel.close()
        else:
            self.tracer.count("portfolio.worker_crashes")
            self.tracer.event(
                "portfolio.worker_crash",
                config=job.config.describe(),
                attempt=job.attempt,
                exitcode=channel.exitcode(),
            )
            channel.kill()
            channel.close()
        if self._racing and job.attempt < self.max_retries:
            delay = _retry_delay(
                job.attempt, job.index, self.retry_backoff,
                self.retry_backoff_cap,
            )
            self.pending.append(
                _Job(
                    job.config,
                    job.index,
                    job.attempt + 1,
                    time.monotonic() + delay,
                )
            )
            self.tracer.count("portfolio.retries")
            self.tracer.event(
                "portfolio.retry",
                config=job.config.describe(),
                attempt=job.attempt + 1,
                delay=round(delay, 3),
            )
        elif job.index not in self.settled:
            crashed_out = ParallelOutcome(
                config=job.config,
                success=False,
                pss_groups=None,
                remaining_deadlocks=-1,
                timers={},
                crashed=True,
                retries=job.attempt,
                duration=time.monotonic() - started,
            )
            self.settled[job.index] = crashed_out
            self._record(crashed_out)
        if self._racing and self.pending:
            slot.channel = self.transport.replace(channel, reason=kind)

    # -- teardown ------------------------------------------------------
    def _drop_suspect(self, channel: WorkerChannel) -> None:
        try:
            channel.close()
        finally:
            if channel in self.suspects:
                self.suspects.remove(channel)

    def _shutdown(self) -> None:
        for slot in self.slots:
            if slot.channel is not None and slot.job is None:
                slot.channel.send_shutdown()
        for slot in self.slots:
            if slot.channel is not None:
                slot.channel.close()
        for channel in list(self.suspects):
            self._drop_suspect(channel)
        self.transport.close()


# ----------------------------------------------------------------------
# journal record <-> outcome
# ----------------------------------------------------------------------


def _journal_record(outcome: ParallelOutcome) -> dict:
    return {
        "config": outcome.config.describe(),
        "success": outcome.success,
        "crashed": outcome.crashed,
        "cancelled": outcome.cancelled,
        "cancel_reason": outcome.cancel_reason,
        "retries": outcome.retries,
        "remaining_deadlocks": outcome.remaining_deadlocks,
        "pss_groups": (
            [sorted(g) for g in outcome.pss_groups]
            if outcome.pss_groups is not None
            else None
        ),
        "duration": outcome.duration,
        "certificate": outcome.certificate,
    }


def _outcome_from_journal(config: SynthesisConfig, record: dict) -> ParallelOutcome:
    pss = record.get("pss_groups")
    return ParallelOutcome(
        config=config,
        success=bool(record.get("success", False)),
        pss_groups=(
            [set(map(tuple, g)) for g in pss] if pss is not None else None
        ),
        remaining_deadlocks=int(record.get("remaining_deadlocks", -1)),
        timers={},
        counters={},
        cancelled=bool(record.get("cancelled", False)),
        cancel_reason=record.get("cancel_reason"),
        crashed=bool(record.get("crashed", False)),
        retries=int(record.get("retries", 0)),
        duration=float(record.get("duration", 0.0)),
        resumed=True,
        certificate=record.get("certificate"),
    )


# ----------------------------------------------------------------------
# the race
# ----------------------------------------------------------------------


def synthesize_parallel(
    builder: Builder,
    builder_args: tuple = (),
    *,
    configs: Sequence[SynthesisConfig] | None = None,
    n_workers: int | None = None,
    base_options: HeuristicOptions | None = None,
    trace_dir: str | os.PathLike | None = None,
    cache_dir: str | os.PathLike | None = None,
    soft_deadline: float | None = None,
    hard_deadline: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    retry_backoff_cap: float = 8.0,
    resume: bool = False,
    fault_plan: FaultPlan | None = None,
    share_precompute: bool = True,
    start_method: str | None = None,
    cancel_grace: float = 2.0,
    paranoid: bool = False,
    worker_endpoints: Sequence[str] | None = None,
    lease_timeout: float = 10.0,
    cancel_event=None,
) -> tuple[ParallelOutcome, list[ParallelOutcome]]:
    """Race the portfolio across supervised worker processes.

    Returns ``(winner_or_best, completed_outcomes)``.  The protocol is built
    **once** in the parent; its schedule-independent preprocessing is shared
    with every worker (``share_precompute=False`` restores the old
    recompute-everything fan-out, for benchmarking).  The config queue is
    cost-ordered from earlier observed timings (persisted in ``cache_dir``),
    may hold more configs than workers, and drains adaptively: when a
    success verifies, the shared event cancels the losers cooperatively at
    their next pass/rank boundary, with termination after ``cancel_grace``
    seconds as the backstop.  Race-cancelled losers are dropped from
    ``completed_outcomes``; deadline-cancelled runs are kept (marked
    ``cancelled``/``cancel_reason="deadline"``).

    Fault tolerance: a worker that dies (OOM kill, segfault, ``os._exit``)
    or exceeds ``hard_deadline`` (watchdog) loses only its own config, which
    is requeued up to ``max_retries`` times with capped exponential backoff
    (``retry_backoff`` .. ``retry_backoff_cap`` seconds, deterministic
    jitter); after exhaustion the config settles as a
    ``ParallelOutcome(crashed=True, retries=N)``.  With ``cache_dir``,
    settled outcomes are journaled to ``portfolio_state.jsonl`` and
    ``resume=True`` replays them instead of re-running (a sweep killed by
    SIGKILL restarts where it stopped).  ``fault_plan`` (default: parsed
    from ``REPRO_FAULT_PLAN``) injects deterministic crashes/hangs/
    corruption for drills.

    With ``cache_dir``, completed outcomes are also memoised on disk and
    repeat runs resolve from cache without spawning workers; cached and
    journaled winners are re-verified before they are trusted.  Winners
    carrying a convergence certificate (:mod:`repro.cert`) are checked with
    the independent certificate checker — orders of magnitude cheaper than
    re-running ``check_solution`` — while certificate-less records fall back
    to the full ``check_solution``.  ``paranoid=True`` forces the full
    re-check even when a certificate is present.  Records that fail either
    check are quarantined (cache) or re-run (journal).  With ``trace_dir``, each worker attempt
    writes ``worker_<index>[_r<attempt>].jsonl``, the parent writes
    ``portfolio.jsonl``, and everything surviving merges into
    ``merged.jsonl`` (stale traces from earlier runs are removed first).

    Distributed mode: ``worker_endpoints=["host:port", ...]`` races the
    portfolio across remote ``stsyn worker`` servers over TCP instead of
    local processes (the builder must be an importable module-level
    callable with JSON-serialisable args — remote workers re-import it).
    Remote failure detection is lease-based: a worker silent for
    ``lease_timeout`` seconds has its config re-dispatched with the same
    capped backoff; a late duplicate result is accepted only after its
    certificate re-checks.  Unreachable/lost endpoints degrade to local
    worker processes, so the race completes even with every remote gone.

    ``cancel_event`` (a ``multiprocessing.Event``) lets an external owner —
    the ``stsyn serve`` orchestrator cancelling a job — abort the whole
    race cooperatively: setting it rides the same pass/rank-boundary
    polling the winner-found signal uses, so workers stop at their next
    checkpoint.  A race aborted this way with no winner raises
    :class:`~repro.core.exceptions.PortfolioError` (every run was
    race-cancelled), which the owner maps to "cancelled".
    """
    # local imports: repro.cert reaches back into repro.parallel.cache for
    # the protocol fingerprint, so importing it at module top would cycle
    from ..cert import CertificateError, ConvergenceCertificate, check_certificate
    from ..verify.stabilization import check_solution

    if resume and cache_dir is None:
        raise ValueError("resume=True requires cache_dir")
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()

    protocol, invariant = builder(*builder_args)
    config_list = (
        list(configs)
        if configs is not None
        else default_portfolio(protocol.n_processes, base_options=base_options)
    )
    if not config_list:
        raise ValueError("empty portfolio")

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        _clear_stale_traces(trace_dir)
        tracer = Tracer(
            os.path.join(os.fspath(trace_dir), PARENT_TRACE),
            role="portfolio-parent",
            protocol=protocol.name,
        )
    else:
        tracer = NULL_TRACER

    cache = SynthesisCache(cache_dir) if cache_dir is not None else None
    cost_model = CostModel.in_dir(cache_dir)
    fingerprint = (
        protocol_fingerprint(protocol, invariant)
        if cache_dir is not None
        else ""
    )
    journal = (
        PortfolioJournal.in_dir(cache_dir) if cache_dir is not None else None
    )

    previous_plan = fault_runtime.active_fault_plan()
    fault_runtime.install_fault_plan(fault_plan)  # parent-side hooks
    try:
        config_list = order_portfolio(
            config_list, fingerprint, cost_model if cache_dir else None
        )

        def verified(outcome: ParallelOutcome) -> bool:
            """Re-establish trust in a cached/journaled winner.

            With a certificate attached (and ``paranoid`` off) the winner is
            re-verified by the independent certificate checker — no
            synthesis, no BFS over the full graph.  Without one (or with
            ``paranoid=True``) the full ``check_solution`` runs.
            """
            if outcome.pss_groups is None:
                return False
            pss_groups = [set(map(tuple, g)) for g in outcome.pss_groups]
            if outcome.certificate is not None and not paranoid:
                with tracer.span("cert.check"):
                    try:
                        cert = ConvergenceCertificate.from_payload(
                            outcome.certificate
                        )
                        check_certificate(
                            protocol,
                            invariant,
                            cert,
                            expected_pss=pss_groups,
                        )
                    except CertificateError as exc:
                        tracer.count("cert.check_fail")
                        tracer.event(
                            "cert.check_failed",
                            config=outcome.config.describe(),
                            error=str(exc),
                        )
                        return False
                tracer.count("cert.check_pass")
                return True
            rebuilt = protocol.with_groups(pss_groups)
            return check_solution(protocol, rebuilt, invariant).ok

        # ------------------------------------------------------------------
        # resume + cache sweep: settled configs never reach the workers
        # ------------------------------------------------------------------
        journaled: dict[str, dict] = {}
        if journal is not None:
            if resume:
                journaled = journal.load()
            else:
                journal.reset()

        completed: list[ParallelOutcome] = []
        winner: ParallelOutcome | None = None
        pending: list[SynthesisConfig] = []
        for config in config_list:
            key = config_key(fingerprint, config) if cache_dir else ""
            record = journaled.get(key)
            if record is not None:
                outcome = _outcome_from_journal(config, record)
                # a journaled winner is re-verified like a cached one; a
                # record that fails verification falls through and re-runs
                if not outcome.success or verified(outcome):
                    tracer.event(
                        "portfolio.resume_skip",
                        config=config.describe(),
                        success=outcome.success,
                        crashed=outcome.crashed,
                    )
                    tracer.count("portfolio.resume_skips")
                    completed.append(outcome)
                    if outcome.success and winner is None:
                        winner = outcome
                    continue
            hit = cache.get(fingerprint, config) if cache is not None else None
            if hit is not None and hit.success and not verified(hit):
                # the entry parses but its solution no longer verifies:
                # quarantine and recompute instead of returning a bad winner
                cache.quarantine(fingerprint, config)
                hit = None
            if hit is None:
                if cache is not None:
                    tracer.event("cache.miss", config=config.describe())
                    tracer.count("portfolio.cache_misses")
                pending.append(config)
                continue
            tracer.event(
                "cache.hit", config=config.describe(), success=hit.success
            )
            tracer.count("portfolio.cache_hits")
            completed.append(hit)
            if hit.success and winner is None:
                winner = hit
        if cache is not None and cache.quarantined:
            tracer.counter_set(
                "portfolio.cache_quarantined", cache.quarantined
            )
        if winner is not None:
            tracer.event(
                "portfolio.winner",
                config=winner.config.describe(),
                cached=True,
            )
            return winner, completed
        if not pending:
            return _pick_best(completed), completed

        # ------------------------------------------------------------------
        # shared precompute (one-shot, parent-side) + supervised race
        # ------------------------------------------------------------------
        ctx, method = _get_mp_context(start_method)
        with ExitStack() as stack:
            precompute: PortfolioPrecompute | None = None
            spec: PrecomputeSpec | None = None
            if share_precompute:
                precompute = precompute_portfolio(
                    protocol, invariant, stats=SynthesisStats(tracer=tracer)
                )
                if method != "fork":
                    shared_rank = SharedRankArray.create(
                        precompute.ranking.rank
                    )
                    # cleanup runs even if anything below raises (spec
                    # construction, worker spawn, the race itself), so
                    # spawn-mode failures cannot leak /dev/shm segments
                    stack.callback(shared_rank.unlink)
                    stack.callback(shared_rank.close)
                    spec = PrecomputeSpec.from_precompute(
                        precompute, builder, builder_args, shared_rank
                    )
            if method == "fork" and share_precompute:
                _set_fork_precompute(precompute)
                stack.callback(_set_fork_precompute, None)

            if worker_endpoints:
                n_workers = n_workers or len(worker_endpoints)
            else:
                n_workers = n_workers or min(len(pending), mp.cpu_count())
            tracer.event(
                "portfolio.schedule",
                n_configs=len(pending),
                n_workers=n_workers,
                start_method=method,
                shared_precompute=share_precompute,
                hard_deadline=hard_deadline,
                max_retries=max_retries,
                resume=resume,
                fault_plan=fault_plan is not None,
                transport="tcp" if worker_endpoints else "local",
                endpoints=list(worker_endpoints) if worker_endpoints else None,
                order=[c.describe() for c in pending],
            )

            def trace_path_for(index: int, attempt: int) -> str | None:
                if trace_dir is None:
                    return None
                suffix = f"_r{attempt}" if attempt else ""
                return os.path.join(
                    os.fspath(trace_dir), f"worker_{index}{suffix}.jsonl"
                )

            def on_result(outcome: ParallelOutcome) -> None:
                if not outcome.cancelled and not outcome.crashed:
                    cost_model.observe(
                        fingerprint, outcome.config, outcome.duration
                    )
                    if cache is not None:
                        cache.put(fingerprint, outcome)
                if journal is not None:
                    journal.append(
                        config_key(fingerprint, outcome.config),
                        _journal_record(outcome),
                    )

            event = cancel_event if cancel_event is not None else ctx.Event()
            local_transport = LocalProcessTransport(
                ctx,
                (event, soft_deadline, builder, builder_args, spec, fault_plan),
                _worker_loop,
            )
            if worker_endpoints:
                template = {
                    "builder": builder_ref(builder, builder_args),
                    "soft_deadline": soft_deadline,
                    "heartbeat_interval": max(0.05, min(1.0, lease_timeout / 4)),
                    "fault_plan": (
                        dataclasses.asdict(fault_plan)
                        if fault_plan is not None
                        else None
                    ),
                }
                transport = TcpTransport(
                    list(worker_endpoints),
                    template,
                    tracer=tracer,
                    local_fallback=local_transport,
                )
            else:
                transport = local_transport
            supervisor = _Supervisor(
                transport,
                n_workers,
                [_Job(config, index) for index, config in enumerate(pending)],
                event=event,
                tracer=tracer,
                trace_path_for=trace_path_for,
                hard_deadline=hard_deadline,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                retry_backoff_cap=retry_backoff_cap,
                cancel_grace=cancel_grace,
                on_result=on_result,
                lease_timeout=lease_timeout,
                verify_duplicate=verified,
            )
            winner, raced = supervisor.run()
            completed.extend(raced)
        cost_model.save()
        if winner is not None:
            tracer.event(
                "portfolio.winner", config=winner.config.describe(), cached=False
            )
            return winner, completed
        return _pick_best(completed), completed
    finally:
        if cache is not None:
            # shared-store hygiene counters, surfaced next to transport.*
            for name, value in (
                ("transport.store_partials_swept", cache.partials_swept),
                ("transport.stale_claims_released", cache.stale_claims_released),
                ("transport.claim_conflicts", cache.claim_conflicts),
            ):
                if value:
                    tracer.counter_set(name, value)
        tracer.close()
        if trace_dir is not None:
            merge_worker_traces(trace_dir)
        fault_runtime.install_fault_plan(previous_plan)
