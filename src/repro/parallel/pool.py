"""Parallel portfolio synthesis (paper Figure 1), with shared precompute.

"For each schedule, we can instantiate one instance of our heuristic on a
separate machine" — here, on worker *processes* via ``multiprocessing``.
Workers race over the configuration portfolio; the first verified success
wins and the rest are cancelled.

The engine has four cooperating parts (see ``docs/ARCHITECTURE.md``):

* :mod:`repro.parallel.precompute` — all schedule-independent work (protocol
  build, closure check, input-cycle SCC pass, C1 cache, ``ComputeRanks``)
  runs once in the parent and is shipped to workers zero-copy under fork, or
  via a picklable spec plus a ``shared_memory``-backed rank array under
  spawn;
* :mod:`repro.parallel.scheduler` — the config queue is cost-ordered
  (cheapest first, from wall-clock observed in earlier runs), portfolios may
  oversubscribe the pool (more configs than workers), and every worker gets
  a :class:`~repro.parallel.scheduler.CancelToken` combining the race-wide
  winner event with a per-config soft deadline;
* :mod:`repro.parallel.cache` — completed outcomes are memoised on disk
  keyed by (protocol fingerprint, schedule, options); warm re-runs return
  without spawning workers;
* this module — the race itself.  Losers observe the cancellation event at
  pass/rank boundaries inside ``add_strong_convergence`` and exit cleanly;
  ``pool.terminate`` after a short grace period remains the backstop.

With ``trace_dir`` set, every worker streams its own JSONL trace
(``worker_<index>.jsonl``) and the parent writes ``portfolio.jsonl``
(precompute span, cache hits/misses, queue order); because lines are flushed
per event, a loser cancelled mid-run still leaves a readable partial trace.
The parent merges whatever exists into ``merged.jsonl`` after the race.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.heuristic import HeuristicOptions
from ..core.synthesizer import SynthesisConfig, default_portfolio
from ..metrics.stats import SynthesisStats
from ..trace.tracer import NULL_TRACER, Tracer
from .cache import SynthesisCache, protocol_fingerprint
from .precompute import (
    PortfolioPrecompute,
    PrecomputeSpec,
    SharedRankArray,
    precompute_portfolio,
)
from .scheduler import CancelToken, CostModel, order_portfolio

#: builder: () -> (protocol, invariant); must be a picklable top-level callable
Builder = Callable[[], tuple]

#: name of the parent-side trace file inside ``trace_dir``
PARENT_TRACE = "portfolio.jsonl"


@dataclass
class ParallelOutcome:
    """Result of one worker: enough to reconstruct the winning protocol."""

    config: SynthesisConfig
    success: bool
    pss_groups: list[set[tuple[int, int]]] | None
    remaining_deadlocks: int
    timers: dict[str, float]
    counters: dict[str, int] = field(default_factory=dict)
    #: this worker's JSONL trace file (None when tracing was off)
    trace_path: str | None = None
    #: True when the run stopped cooperatively instead of completing
    cancelled: bool = False
    #: why: "cancelled" (a winner verified first) or "deadline" (over budget)
    cancel_reason: str | None = None
    #: True when the outcome came from the on-disk cache (no worker ran)
    cached: bool = False
    #: worker wall-clock in seconds (0.0 for cached outcomes)
    duration: float = 0.0


# ----------------------------------------------------------------------
# worker-process state (set once per worker by the pool initializer)
# ----------------------------------------------------------------------

#: per-worker context: event, soft deadline, builder, precompute
_WORKER_CTX: dict | None = None

#: parent-side stash read by fork children through copy-on-write; must be
#: populated *before* the pool is created and cleared afterwards
_FORK_PRECOMPUTE: PortfolioPrecompute | None = None


def _init_worker(event, soft_deadline, builder, builder_args, spec) -> None:
    """Pool initializer: runs once in every worker process.

    Under fork the precompute is inherited zero-copy via
    :data:`_FORK_PRECOMPUTE`; under spawn it is rebuilt from the picklable
    ``spec`` (rank array attached from shared memory).  ``spec`` and the
    stash are both ``None`` when precompute sharing is disabled, in which
    case each job rebuilds everything from the builder (the pre-PR-3
    behaviour, kept for benchmarking the speedup honestly).
    """
    global _WORKER_CTX
    if spec is not None:
        precompute = spec.rebuild()
    else:
        precompute = _FORK_PRECOMPUTE
    _WORKER_CTX = {
        "event": event,
        "soft_deadline": soft_deadline,
        "builder": builder,
        "builder_args": builder_args,
        "precompute": precompute,
    }


def _worker(args) -> ParallelOutcome:
    config, index, trace_path = args
    from ..core.exceptions import SynthesisCancelled
    from ..core.heuristic import add_strong_convergence
    from ..verify.stabilization import check_solution

    ctx = _WORKER_CTX or {}
    precompute = ctx.get("precompute")
    cancel = CancelToken.with_budget(
        event=ctx.get("event"), budget=ctx.get("soft_deadline")
    )
    tracer = (
        Tracer(trace_path, worker=index, config=config.describe())
        if trace_path is not None
        else NULL_TRACER
    )
    t0 = time.perf_counter()
    try:
        if precompute is not None:
            protocol, invariant = precompute.protocol, precompute.invariant
        else:
            builder, builder_args = ctx["builder"], ctx["builder_args"]
            protocol, invariant = builder(*builder_args)
        tracer.event(
            "worker.start",
            protocol=protocol.name,
            shared_precompute=precompute is not None,
        )
        stats = SynthesisStats(tracer=tracer)
        try:
            result = add_strong_convergence(
                protocol,
                invariant,
                schedule=config.schedule,
                options=config.options,
                stats=stats,
                precompute=precompute,
                cancel=cancel,
            )
        except SynthesisCancelled as exc:
            tracer.event("worker.cancelled", reason=exc.reason)
            return ParallelOutcome(
                config=config,
                success=False,
                pss_groups=None,
                remaining_deadlocks=-1,
                timers=dict(stats.timers),
                counters=dict(stats.counters),
                trace_path=trace_path,
                cancelled=True,
                cancel_reason=exc.reason,
                duration=time.perf_counter() - t0,
            )
        success = result.success
        if success:
            with tracer.span("verify.check_solution"):
                success = check_solution(protocol, result.protocol, invariant).ok
        tracer.event("worker.done", success=success)
        return ParallelOutcome(
            config=config,
            success=success,
            pss_groups=(
                [set(g) for g in result.protocol.groups] if success else None
            ),
            remaining_deadlocks=(
                0 if success else result.remaining_deadlocks.count()
            ),
            timers=dict(stats.timers),
            counters=dict(stats.counters),
            trace_path=trace_path,
            duration=time.perf_counter() - t0,
        )
    finally:
        tracer.close()


def merge_worker_traces(trace_dir: str | os.PathLike) -> str | None:
    """Merge ``portfolio.jsonl`` (parent) and every ``worker_*.jsonl`` under
    ``trace_dir`` into ``merged.jsonl``; returns its path (None when no
    trace files exist)."""
    from ..trace.report import merge_traces

    trace_dir = os.fspath(trace_dir)
    paths = sorted(
        os.path.join(trace_dir, name)
        for name in os.listdir(trace_dir)
        if name.startswith("worker_") and name.endswith(".jsonl")
    )
    parent = os.path.join(trace_dir, PARENT_TRACE)
    if os.path.exists(parent):
        paths.insert(0, parent)
    if not paths:
        return None
    merged = os.path.join(trace_dir, "merged.jsonl")
    merge_traces(paths, merged)
    return merged


def _get_mp_context(start_method: str | None):
    """The multiprocessing context: fork where available (zero-copy
    precompute), spawn elsewhere (Windows, macOS default)."""
    available = mp.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in available else "spawn"
    elif start_method not in available:
        raise ValueError(
            f"start method {start_method!r} unavailable (have {available})"
        )
    return mp.get_context(start_method), start_method


def _pick_best(outcomes: Sequence[ParallelOutcome]) -> ParallelOutcome:
    """Best failure: fewest remaining deadlocks among completed runs;
    cancelled runs (unknown deadlock count) only as a last resort."""
    finished = [o for o in outcomes if not o.cancelled]
    if finished:
        return min(finished, key=lambda o: o.remaining_deadlocks)
    return outcomes[0]


def synthesize_parallel(
    builder: Builder,
    builder_args: tuple = (),
    *,
    configs: Sequence[SynthesisConfig] | None = None,
    n_workers: int | None = None,
    base_options: HeuristicOptions | None = None,
    trace_dir: str | os.PathLike | None = None,
    cache_dir: str | os.PathLike | None = None,
    soft_deadline: float | None = None,
    share_precompute: bool = True,
    start_method: str | None = None,
    cancel_grace: float = 2.0,
) -> tuple[ParallelOutcome, list[ParallelOutcome]]:
    """Race the portfolio across worker processes.

    Returns ``(winner_or_best, completed_outcomes)``.  The protocol is built
    **once** in the parent; its schedule-independent preprocessing is shared
    with every worker (``share_precompute=False`` restores the old
    recompute-everything fan-out, for benchmarking).  The config queue is
    cost-ordered from earlier observed timings (persisted in ``cache_dir``),
    may hold more configs than workers, and drains adaptively: when a
    success verifies, the shared event cancels the losers cooperatively at
    their next pass/rank boundary, then ``pool.terminate`` lands after
    ``cancel_grace`` seconds as a backstop.  Race-cancelled losers are
    dropped from ``completed_outcomes``; deadline-cancelled runs are kept
    (marked ``cancelled``/``cancel_reason="deadline"``).

    With ``cache_dir``, completed outcomes are memoised on disk and repeat
    runs resolve from cache without spawning workers.  With ``trace_dir``,
    each worker writes ``worker_<index>.jsonl``, the parent writes
    ``portfolio.jsonl``, and everything surviving merges into
    ``merged.jsonl``.
    """
    global _FORK_PRECOMPUTE

    protocol, invariant = builder(*builder_args)
    config_list = (
        list(configs)
        if configs is not None
        else default_portfolio(protocol.n_processes, base_options=base_options)
    )
    if not config_list:
        raise ValueError("empty portfolio")

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        tracer = Tracer(
            os.path.join(os.fspath(trace_dir), PARENT_TRACE),
            role="portfolio-parent",
            protocol=protocol.name,
        )
    else:
        tracer = NULL_TRACER

    cache = SynthesisCache(cache_dir) if cache_dir is not None else None
    cost_model = CostModel.in_dir(cache_dir)
    fingerprint = (
        protocol_fingerprint(protocol, invariant)
        if cache_dir is not None
        else ""
    )

    try:
        config_list = order_portfolio(
            config_list, fingerprint, cost_model if cache_dir else None
        )

        # ------------------------------------------------------------------
        # cache sweep: known outcomes never reach the pool
        # ------------------------------------------------------------------
        completed: list[ParallelOutcome] = []
        winner: ParallelOutcome | None = None
        pending: list[SynthesisConfig] = []
        for config in config_list:
            hit = cache.get(fingerprint, config) if cache is not None else None
            if hit is None:
                if cache is not None:
                    tracer.event("cache.miss", config=config.describe())
                    tracer.count("portfolio.cache_misses")
                pending.append(config)
                continue
            tracer.event(
                "cache.hit", config=config.describe(), success=hit.success
            )
            tracer.count("portfolio.cache_hits")
            completed.append(hit)
            if hit.success and winner is None:
                winner = hit
        if winner is not None:
            tracer.event(
                "portfolio.winner",
                config=winner.config.describe(),
                cached=True,
            )
            return winner, completed
        if not pending:
            return _pick_best(completed), completed

        # ------------------------------------------------------------------
        # shared precompute (one-shot, parent-side)
        # ------------------------------------------------------------------
        ctx, method = _get_mp_context(start_method)
        precompute: PortfolioPrecompute | None = None
        spec: PrecomputeSpec | None = None
        shared_rank: SharedRankArray | None = None
        if share_precompute:
            precompute = precompute_portfolio(
                protocol, invariant, stats=SynthesisStats(tracer=tracer)
            )
            if method != "fork":
                shared_rank = SharedRankArray.create(precompute.ranking.rank)
                spec = PrecomputeSpec.from_precompute(
                    precompute, builder, builder_args, shared_rank
                )

        n_workers = n_workers or min(len(pending), mp.cpu_count())
        tracer.event(
            "portfolio.schedule",
            n_configs=len(pending),
            n_workers=n_workers,
            start_method=method,
            shared_precompute=share_precompute,
            order=[c.describe() for c in pending],
        )

        jobs = [
            (
                config,
                index,
                (
                    os.path.join(
                        os.fspath(trace_dir), f"worker_{index}.jsonl"
                    )
                    if trace_dir is not None
                    else None
                ),
            )
            for index, config in enumerate(pending)
        ]

        event = ctx.Event()
        if method == "fork" and share_precompute:
            _FORK_PRECOMPUTE = precompute
        try:
            with ctx.Pool(
                processes=n_workers,
                initializer=_init_worker,
                initargs=(event, soft_deadline, builder, builder_args, spec),
            ) as pool:
                results = pool.imap_unordered(_worker, jobs)
                for outcome in results:
                    if outcome.cancelled and outcome.cancel_reason == "cancelled":
                        tracer.count("portfolio.losers_cancelled")
                        continue
                    completed.append(outcome)
                    if not outcome.cancelled:
                        cost_model.observe(
                            fingerprint, outcome.config, outcome.duration
                        )
                        if cache is not None:
                            cache.put(fingerprint, outcome)
                    if outcome.success:
                        winner = outcome
                        event.set()
                        # grace window: losers exit cooperatively at their
                        # next pass/rank boundary and keep their traces
                        deadline = time.monotonic() + cancel_grace
                        while True:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                break
                            try:
                                late = results.next(timeout=remaining)
                            except StopIteration:
                                break
                            except mp.TimeoutError:
                                break
                            if late.cancelled and late.cancel_reason == "cancelled":
                                tracer.count("portfolio.losers_cancelled")
                                continue
                            completed.append(late)
                            if not late.cancelled:
                                cost_model.observe(
                                    fingerprint, late.config, late.duration
                                )
                                if cache is not None:
                                    cache.put(fingerprint, late)
                        break
        finally:
            _FORK_PRECOMPUTE = None
            if shared_rank is not None:
                shared_rank.close()
                shared_rank.unlink()
        cost_model.save()
        if winner is not None:
            tracer.event(
                "portfolio.winner", config=winner.config.describe(), cached=False
            )
            return winner, completed
        return _pick_best(completed), completed
    finally:
        tracer.close()
        if trace_dir is not None:
            merge_worker_traces(trace_dir)
