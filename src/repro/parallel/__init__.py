"""Multi-process portfolio synthesis with shared precompute, adaptive
scheduling, an on-disk synthesis cache and a fault-tolerant supervised
runtime — crash isolation with retries, a hard-deadline watchdog and
journal-based checkpoint/resume (one heuristic instance per worker, paper
Figure 1)."""

from .cache import SynthesisCache, config_key, protocol_fingerprint
from .journal import PortfolioJournal
from .pool import ParallelOutcome, merge_worker_traces, synthesize_parallel
from .precompute import (
    PortfolioPrecompute,
    PrecomputeSpec,
    SharedRankArray,
    precompute_portfolio,
)
from .scheduler import CancelToken, CostModel, order_portfolio
from .storeio import StoreClaim, atomic_write_json, sweep_partials
from .transport import (
    LocalProcessTransport,
    TcpTransport,
    WorkerServer,
    run_worker_server,
)

__all__ = [
    "CancelToken",
    "CostModel",
    "LocalProcessTransport",
    "ParallelOutcome",
    "PortfolioJournal",
    "PortfolioPrecompute",
    "PrecomputeSpec",
    "SharedRankArray",
    "StoreClaim",
    "SynthesisCache",
    "TcpTransport",
    "WorkerServer",
    "atomic_write_json",
    "config_key",
    "merge_worker_traces",
    "order_portfolio",
    "precompute_portfolio",
    "protocol_fingerprint",
    "run_worker_server",
    "sweep_partials",
    "synthesize_parallel",
]
