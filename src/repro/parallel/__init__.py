"""Multi-process portfolio synthesis (one heuristic instance per worker)."""

from .pool import ParallelOutcome, synthesize_parallel

__all__ = ["ParallelOutcome", "synthesize_parallel"]
