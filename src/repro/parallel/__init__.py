"""Multi-process portfolio synthesis with shared precompute, adaptive
scheduling, an on-disk synthesis cache and a fault-tolerant supervised
runtime — crash isolation with retries, a hard-deadline watchdog and
journal-based checkpoint/resume (one heuristic instance per worker, paper
Figure 1)."""

from .cache import SynthesisCache, config_key, protocol_fingerprint
from .journal import PortfolioJournal
from .pool import ParallelOutcome, merge_worker_traces, synthesize_parallel
from .precompute import (
    PortfolioPrecompute,
    PrecomputeSpec,
    SharedRankArray,
    precompute_portfolio,
)
from .scheduler import CancelToken, CostModel, order_portfolio

__all__ = [
    "CancelToken",
    "CostModel",
    "ParallelOutcome",
    "PortfolioJournal",
    "PortfolioPrecompute",
    "PrecomputeSpec",
    "SharedRankArray",
    "SynthesisCache",
    "config_key",
    "merge_worker_traces",
    "order_portfolio",
    "precompute_portfolio",
    "protocol_fingerprint",
    "synthesize_parallel",
]
