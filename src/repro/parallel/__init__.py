"""Multi-process portfolio synthesis (one heuristic instance per worker)."""

from .pool import ParallelOutcome, merge_worker_traces, synthesize_parallel

__all__ = ["ParallelOutcome", "merge_worker_traces", "synthesize_parallel"]
