"""On-disk synthesis memo cache.

Benchmark sweeps and repeated CLI runs re-solve the exact same
(protocol, schedule, options) configurations over and over; related
synthesis tools amortise that work across candidates.  Here every completed
portfolio outcome is memoised under a content key:

``protocol_fingerprint``
    SHA-256 over the state space (variable names + radices), the topology
    (per-process read/write sets), the transition groups ``δp`` and the
    invariant mask — everything that determines the synthesis answer.
``config_key``
    the fingerprint combined with the recovery schedule and the full
    ``HeuristicOptions`` record.

One JSON file per key under ``cache_dir`` (human-inspectable, safe to
delete).  A hit reconstructs the :class:`~repro.parallel.ParallelOutcome`
without spawning a single worker, so a warm re-run returns in near-constant
time.  Cancelled/timed-out/crashed runs are never cached.

The directory doubles as the cluster's **shared content-addressed store**:
several coordinator hosts may read and write it concurrently (over NFS or
a shared volume), so every write goes through
:func:`repro.parallel.storeio.atomic_write_json` (writer-unique temp name,
fsync, atomic rename), redundant writes are de-duplicated with ``O_EXCL``
claim files (:class:`~repro.parallel.storeio.StoreClaim` — stale claims
from dead hosts are broken, never honoured forever), and startup sweeps
quarantine ``*.tmp.*`` partials left by writers that died mid-write.

A torn or truncated entry (power loss mid-write, disk corruption, or an
injected :mod:`repro.faults.runtime` fault) is **quarantined**: renamed to
``<key>.json.corrupt`` and treated as a miss, so the evidence survives for
diagnosis while the sweep recomputes the config instead of silently
trusting — or repeatedly tripping over — a bad file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict

from ..protocol.predicate import Predicate
from ..protocol.protocol import Protocol
from .storeio import StoreClaim, atomic_write_json, sweep_partials

#: bump when the stored schema changes; stale entries are ignored
CACHE_SCHEMA = 1


def protocol_fingerprint(protocol: Protocol, invariant: Predicate) -> str:
    """Content hash of everything that determines the synthesis answer."""
    h = hashlib.sha256()
    space = protocol.space
    h.update(repr([v.name for v in space.variables]).encode())
    h.update(repr([int(r) for r in space.radices]).encode())
    for spec in protocol.topology:
        h.update(
            repr((spec.name, tuple(spec.reads), tuple(spec.writes))).encode()
        )
    for j, gs in enumerate(protocol.groups):
        h.update(repr((j, sorted(gs))).encode())
    h.update(invariant.mask.tobytes())
    return h.hexdigest()


def config_key(fingerprint: str, config) -> str:
    """Cache key for one portfolio entry (protocol × schedule × options)."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "schedule": list(config.schedule),
            "options": asdict(config.options),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class SynthesisCache:
    """A directory of memoised portfolio outcomes, one JSON file per key."""

    def __init__(self, cache_dir: str | os.PathLike):
        self.cache_dir = os.fspath(cache_dir)
        os.makedirs(self.cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.claims = StoreClaim(self.cache_dir)
        # startup hygiene for the shared store: writers that died mid-write
        # leave temp partials and claim files behind; both are leases, not
        # permanent state, and must never wedge the next sweep
        self.claim_conflicts = 0
        self.partials_swept = sweep_partials(self.cache_dir)
        self.stale_claims_released = self.claims.sweep_stale()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _quarantine_path(self, path: str) -> None:
        """Move a bad entry aside (``*.corrupt``) instead of deleting it."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            return
        self.quarantined += 1

    def quarantine(self, fingerprint: str, config) -> None:
        """Quarantine the entry for one config (e.g. a cached winner that
        failed re-verification against ``check_solution``)."""
        self._quarantine_path(self._path(config_key(fingerprint, config)))

    def get(self, fingerprint: str, config):
        """Return the memoised :class:`ParallelOutcome` or ``None``.

        A file that exists but cannot be parsed back into an outcome is
        quarantined to ``*.corrupt`` and reported as a miss.
        """
        from .pool import ParallelOutcome

        path = self._path(config_key(fingerprint, config))
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with open(path) as handle:
                record = json.load(handle)
            if not isinstance(record, dict):
                raise ValueError("cache entry is not a JSON object")
            if record.get("schema") != CACHE_SCHEMA:
                # a schema bump is staleness, not corruption: plain miss
                self.misses += 1
                return None
            pss = record.get("pss_groups")
            outcome = ParallelOutcome(
                config=config,
                success=bool(record["success"]),
                pss_groups=(
                    [set(map(tuple, g)) for g in pss]
                    if pss is not None
                    else None
                ),
                remaining_deadlocks=int(record.get("remaining_deadlocks", 0)),
                timers=dict(record.get("timers", {})),
                counters=dict(record.get("counters", {})),
                cached=True,
                certificate=record.get("certificate"),
            )
        except OSError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine_path(path)
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def put(self, fingerprint: str, outcome) -> str | None:
        """Memoise a completed outcome; returns the file path (None when the
        outcome is not cacheable, e.g. it was cancelled or crashed)."""
        if outcome.cancelled or outcome.cached or outcome.crashed:
            return None
        record = {
            "schema": CACHE_SCHEMA,
            "config": outcome.config.describe(),
            "success": outcome.success,
            "pss_groups": (
                [sorted(g) for g in outcome.pss_groups]
                if outcome.pss_groups is not None
                else None
            ),
            "remaining_deadlocks": outcome.remaining_deadlocks,
            "timers": outcome.timers,
            "counters": outcome.counters,
            "certificate": getattr(outcome, "certificate", None),
        }
        from ..faults.runtime import should_corrupt_cache, should_corrupt_cert

        if record["certificate"] is not None and should_corrupt_cert(
            "cert.store", outcome.config.describe()
        ):
            # fault drill: store a subtly tampered certificate — the entry
            # parses fine, so only the certificate checker can catch it
            from ..cert.certificate import tamper_certificate_payload

            record["certificate"] = tamper_certificate_payload(
                record["certificate"]
            )
        key = config_key(fingerprint, outcome.config)
        path = self._path(key)
        # the O_EXCL claim keeps concurrent multi-host writers off the same
        # key: the loser skips a byte-identical redundant write (the store is
        # content-addressed, either copy is correct), and a claim from a
        # writer that died mid-compute goes stale and is broken, not honoured
        if not self.claims.acquire(key):
            self.claim_conflicts += 1
            return None
        try:
            atomic_write_json(path, record)
        finally:
            self.claims.release(key)

        if should_corrupt_cache(outcome.config.describe()):
            # fault drill: leave a torn half-written entry on disk
            payload = json.dumps(record)
            with open(path, "w") as handle:
                handle.write(payload[: max(1, len(payload) // 2)])
        return path

    def __len__(self) -> int:
        return sum(
            1 for n in os.listdir(self.cache_dir) if n.endswith(".json")
        )
