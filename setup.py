"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs (``pip install -e .``) cannot build the editable wheel.  This shim
keeps the legacy path (``python setup.py develop``) working; ``pip install
-e .`` falls back to it on pip versions that still support legacy editables.
"""

from setuptools import setup

setup()
