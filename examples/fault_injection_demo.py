#!/usr/bin/env python3
"""Watching self-stabilization happen: fault injection on the two-ring TR².

The paper's motivation is transient faults — soft errors, bad
initialisation — perturbing a protocol to an arbitrary state.  This demo
takes the 8-process two-ring token ring (Section VI-C), synthesizes its
stabilizing version, then repeatedly corrupts the running protocol and
watches it recover: the token count spikes after each fault burst and
returns to exactly one as convergence completes.
"""

from repro import add_strong_convergence, two_ring
from repro.faults import FaultModel, RandomDaemon, measure_convergence, run_with_faults
from repro.protocols.two_ring import token_count_array


def main() -> None:
    protocol, invariant = two_ring()
    print(f"TR² : {protocol.n_processes} processes, |S| = {protocol.space.size}")
    print("synthesizing strong convergence (this takes a few seconds) ...")
    result = add_strong_convergence(protocol, invariant)
    assert result.success
    pss = result.protocol
    print(f"done: +{result.n_added} recovery groups (pass {result.pass_completed})\n")

    tokens = token_count_array(protocol.space)
    traces = run_with_faults(
        pss,
        invariant,
        fault_model=FaultModel(max_vars=3),
        n_faults=5,
        steps_between_faults=400,
        seed=42,
        daemon=RandomDaemon(42),
    )
    for i, trace in enumerate(traces):
        start_tokens = int(tokens[trace.states[0]])
        end_tokens = int(tokens[trace.states[-1]])
        status = (
            f"recovered in {trace.steps_to_converge} steps"
            if trace.converged
            else "DID NOT RECOVER"
        )
        print(
            f"fault burst {i + 1}: corrupted to "
            f"{start_tokens} token(s) -> {status} "
            f"(now {end_tokens} token(s))"
        )
        assert trace.converged

    print("\nstatistical convergence from 200 uniformly random states:")
    stats = measure_convergence(pss, invariant, runs=200, seed=7)
    print(f"  {stats.summary()}")
    assert stats.convergence_rate == 1.0
    print("every run recovered — strong convergence, observed.")


if __name__ == "__main__":
    main()
