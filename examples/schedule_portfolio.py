#!/usr/bin/env python3
"""The lightweight method's portfolio (paper Figure 1): one heuristic
instance per recovery schedule / configuration, run in parallel.

The TR instance with K=5, |D|=5 is the interesting one: the literal batch
cycle resolution fails on it, while the sequential member of the portfolio
succeeds — showing why the paper structures the method as independent
instances racing over configurations.  Different schedules also yield
*different* correct solutions (the paper reports three distinct synthesized
token rings).
"""

import time

from repro import check_solution, synthesize, token_ring
from repro.core import add_strong_convergence
from repro.core.schedules import rotation_schedules
from repro.parallel import synthesize_parallel


def sequential_portfolio() -> None:
    protocol, invariant = token_ring(5, 5)
    print(f"TR K=5 |D|=5 : |S| = {protocol.space.size}")
    t0 = time.perf_counter()
    portfolio = synthesize(protocol, invariant)
    print(f"portfolio finished in {time.perf_counter() - t0:.2f}s")
    print(portfolio.summary())
    assert portfolio.success
    for config, success, remaining in portfolio.attempts:
        mark = "WIN " if success else f"fail ({remaining} deadlocks left)"
        print(f"  {config.describe():55s} {mark}")
    print()


def distinct_solutions() -> None:
    protocol, invariant = token_ring(4, 3)
    solutions = {}
    for schedule in rotation_schedules(4):
        result = add_strong_convergence(protocol, invariant, schedule=schedule)
        if result.success:
            assert check_solution(protocol, result.protocol, invariant).ok
            key = tuple(frozenset(g) for g in result.protocol.groups)
            solutions.setdefault(key, []).append(schedule)
    print(f"{len(solutions)} distinct correct TR solutions across 4 schedules:")
    for i, (key, schedules) in enumerate(solutions.items()):
        print(f"  solution {i + 1}: from schedules {schedules}")
    print()


def parallel_race() -> None:
    print("racing the portfolio across worker processes (Figure 1) ...")
    t0 = time.perf_counter()
    winner, completed = synthesize_parallel(token_ring, (5, 5), n_workers=4)
    print(
        f"winner: {winner.config.describe()} "
        f"after {time.perf_counter() - t0:.2f}s "
        f"({len(completed)} instances finished before the cut)"
    )
    assert winner.success


def main() -> None:
    sequential_portfolio()
    distinct_solutions()
    parallel_race()


if __name__ == "__main__":
    main()
