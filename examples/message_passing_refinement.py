#!/usr/bin/env python3
"""From shared memory to message passing (paper Section II's refinement story).

The paper synthesizes in the shared-memory model and appeals to known
correctness-preserving refinements for message passing.  This demo performs
the cached-neighbour refinement on the *synthesized* stabilizing token ring:
every process keeps cached copies of its neighbour's variable, writes are
broadcast over FIFO channels, owners periodically retransmit — and then we
corrupt everything (owned values, caches, channel contents) and watch the
distributed system converge anyway.
"""

import random

from repro import add_strong_convergence, token_ring
from repro.refinement import MessagePassingSystem, run_message_passing


def main() -> None:
    protocol, invariant = token_ring(k=4, domain=3)
    result = add_strong_convergence(protocol, invariant)
    assert result.success
    pss = result.protocol
    print(f"synthesized {pss.name}; refining to message passing ...")

    system = MessagePassingSystem(pss, channel_capacity=8)
    print(
        f"{len(system.channels)} FIFO channels, "
        f"{sum(len(c) for c in system.caches)} cached variables\n"
    )

    system.load_state(invariant.sample())
    rng = random.Random(2026)
    for burst in range(1, 6):
        system.corrupt(rng)  # owned values + caches + channels, all garbage
        stale = sum(
            cache[v] != system.values[v]
            for cache in system.caches
            for v in cache
        )
        in_flight = sum(len(c) for c in system.channels.values())
        trace = run_message_passing(
            system, invariant, max_events=30_000, seed=burst
        )
        status = (
            f"legitimate after {trace.events} events"
            if trace.converged
            else "DID NOT CONVERGE"
        )
        print(
            f"burst {burst}: {stale} stale cache entries, "
            f"{in_flight} junk messages -> {status}"
        )
        assert trace.converged

    print("\nthe refined synthesized protocol recovers from total corruption —")
    print("caches repaired by retransmission, token count restored to one.")

    print("\ncontrol: the refined NON-stabilizing token ring gets stuck:")
    control = MessagePassingSystem(protocol)
    failures = 0
    for seed in range(10):
        control.load_state(0)
        control.corrupt(random.Random(seed))
        trace = run_message_passing(control, invariant, max_events=5_000, seed=seed)
        failures += not trace.converged
    print(f"  {failures}/10 corrupted runs never recovered (refined deadlocks)")


if __name__ == "__main__":
    main()
