#!/usr/bin/env python3
"""Flaw hunting in a manually designed protocol (paper Section VI-A).

Re-enacts the paper's surprise discovery: while comparing the synthesized
maximal-matching protocol against Gouda & Acharya's manually designed one,
the tool found that the manual protocol has a *non-progress cycle* — it can
loop outside the legitimate states forever.  This script

1. synthesizes a correct stabilizing matching protocol from scratch,
2. model-checks the manual protocol and extracts a concrete cycle,
3. replays the paper's exact witness: from <left,self,left,self,left> the
   round-robin schedule (P0..P4) twice returns to the start.
"""

from repro import add_strong_convergence, check_solution, matching
from repro.dsl.pretty import format_protocol
from repro.protocols import gouda_acharya_matching, paper_cycle_start_state
from repro.protocols.gouda_acharya import paper_cycle_schedule
from repro.protocols.matching import LEFT, SELF
from repro.verify import analyze_stabilization, extract_cycle, format_cycle, nonprogress_sccs


def synthesize_correct_matching() -> None:
    protocol, invariant = matching(5)
    result = add_strong_convergence(protocol, invariant)
    assert result.success
    assert check_solution(protocol, result.protocol, invariant).ok
    print("=== synthesized stabilizing matching (K=5), P0's actions ===")
    from repro.dsl.pretty import process_actions

    for action in process_actions(result.protocol, 0, use_relative=False):
        print(f"  {action}")
    print()


def hunt_the_flaw() -> None:
    protocol, invariant = gouda_acharya_matching(5)
    print("=== manually designed Gouda–Acharya matching (K=5) ===")
    verdict = analyze_stabilization(protocol, invariant)
    print(f"verdict: {verdict.describe()}")

    sccs = nonprogress_sccs(protocol, invariant)
    print(f"non-progress SCCs outside I_MM: {len(sccs)}")
    cycle = extract_cycle(protocol, sccs[0], invariant)
    print("one concrete non-progress cycle, found automatically:")
    print(format_cycle(protocol, cycle))
    print()


def replay_paper_witness() -> None:
    protocol, invariant = gouda_acharya_matching(5)
    space = protocol.space
    state = space.encode(paper_cycle_start_state())
    start = state
    print("=== replaying the paper's witness schedule (P0..P4) x 2 ===")
    for step, proc in enumerate(paper_cycle_schedule()):
        assert state not in invariant
        values = list(space.decode(state))
        values[proc] = LEFT if values[proc] == SELF else SELF
        nxt = space.encode(values)
        assert nxt in protocol.successors(state), "not a protocol move!"
        print(f"step {step:2d}: {space.format_state(state)}  --P{proc}-->")
        state = nxt
    assert state == start
    print(f"         {space.format_state(state)}   == start: cycle closed")


def main() -> None:
    synthesize_correct_matching()
    hunt_the_flaw()
    replay_paper_witness()


if __name__ == "__main__":
    main()
