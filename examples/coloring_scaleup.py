#!/usr/bin/env python3
"""Scaling the locally-correctable case study (paper Section VI-B + VII).

Three-coloring is the paper's scalability star (they reach 40 processes):
it is *locally correctable*, so recovery never creates cycles and the
synthesis cost stays tame.  This script

1. proves local correctability with the analysis module,
2. sweeps the explicit engine over ring sizes,
3. runs one instance on the symbolic (BDD) engine — the representation the
   paper used, and the only one that exists at 3^40 states.

Pass ``--max-k`` to push further (each point prints its timing).
"""

import argparse
import time

from repro import add_strong_convergence, check_solution, coloring
from repro.analysis import analyze_local_correctability, analyze_symmetry
from repro.dsl.pretty import format_protocol
from repro.protocols.coloring import coloring_symbolic
from repro.symbolic import add_strong_convergence_symbolic


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-k", type=int, default=11)
    parser.add_argument("--symbolic-k", type=int, default=8)
    args = parser.parse_args()

    protocol, invariant = coloring(5)
    report = analyze_local_correctability(protocol, invariant)
    print(f"local correctability: {report.locally_correctable}")
    print(f"  {report.reason}\n")

    print("explicit-engine sweep:")
    for k in range(5, args.max_k + 1, 2):
        protocol, invariant = coloring(k)
        t0 = time.perf_counter()
        result = add_strong_convergence(protocol, invariant)
        elapsed = time.perf_counter() - t0
        assert result.success
        assert check_solution(protocol, result.protocol, invariant).ok
        sccs = len(result.stats.scc_sizes)
        print(
            f"  K={k:3d}  |S|=3^{k}  {elapsed:7.2f}s  "
            f"+{result.n_added} groups, {sccs} SCCs encountered"
        )

    k = 5
    protocol, invariant = coloring(k)
    result = add_strong_convergence(protocol, invariant)
    print(f"\nsynthesized protocol shape at K={k} "
          f"({analyze_symmetry(result.protocol).describe().splitlines()[0]}):")
    print(format_protocol(result.protocol, use_relative=False))

    k = args.symbolic_k
    print(f"\nsymbolic (BDD) engine at K={k} — the paper's representation:")
    protocol, sp, inv = coloring_symbolic(k)
    t0 = time.perf_counter()
    res = add_strong_convergence_symbolic(protocol, inv, sp=sp)
    elapsed = time.perf_counter() - t0
    assert res.success
    res.record_space_metrics()
    print(
        f"  K={k}: success in {elapsed:.1f}s; "
        f"program size {res.stats.bdd_nodes['total_program_size']} BDD nodes; "
        f"manager holds {res.stats.bdd_nodes['manager_nodes']} nodes"
    )


if __name__ == "__main__":
    main()
