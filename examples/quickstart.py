#!/usr/bin/env python3
"""Quickstart: add convergence to Dijkstra's token ring (paper Sections II+V).

Builds the non-stabilizing 4-process token ring, shows that it is *not*
self-stabilizing (deadlock states exist outside the legitimate states S1),
runs the paper's heuristic, and prints the synthesized protocol — which is
exactly Dijkstra's classic stabilizing token ring, re-discovered
automatically.

Set ``REPRO_TRACE=/path/to/run.jsonl`` to record a structured trace of the
run (spans + counters); summarize it afterwards with
``stsyn trace-report /path/to/run.jsonl``.
"""

import os

from repro import (
    NULL_TRACER,
    SynthesisStats,
    Tracer,
    add_strong_convergence,
    analyze_stabilization,
    check_solution,
    token_ring,
    use_tracer,
)
from repro.dsl.pretty import format_protocol


def main() -> None:
    trace_path = os.environ.get("REPRO_TRACE")
    tracer = Tracer(trace_path, example="quickstart") if trace_path else NULL_TRACER

    protocol, invariant = token_ring(k=4, domain=3)
    print(f"input protocol : {protocol.name}  (|S| = {protocol.space.size})")
    print(f"legitimate set : {invariant.count()} states (S1)")

    verdict = analyze_stabilization(protocol, invariant)
    print(f"input verdict  : {verdict.describe()}")
    deadlock = protocol.space.encode([0, 0, 1, 2])
    print(
        f"e.g. the paper's deadlock state "
        f"{protocol.space.format_state(deadlock)} has "
        f"{len(protocol.successors(deadlock))} successors"
    )

    print("\nrunning the three-pass heuristic ...")
    with use_tracer(tracer):
        result = add_strong_convergence(
            protocol, invariant, stats=SynthesisStats.traced(tracer)
        )
    assert result.success, "synthesis failed?!"
    print(
        f"success in pass {result.pass_completed}; "
        f"{result.n_added} recovery groups added; "
        f"max rank M = {result.ranking.max_rank}"
    )

    check = check_solution(protocol, result.protocol, invariant)
    assert check.ok, check
    print("independently verified: closure ok, δp|I preserved, strongly converging\n")

    print("synthesized protocol (Dijkstra's token ring):")
    print(format_protocol(result.protocol))
    print("\nrecovery added by the tool (the paper's pass-2 action):")
    print(format_protocol(result.protocol, added_only=result.added_groups))

    if tracer.enabled:
        tracer.close()
        print(f"\ntrace written to {trace_path} (see: stsyn trace-report)")


if __name__ == "__main__":
    main()
