#!/usr/bin/env python3
"""Fail CI on broken intra-repo links in the markdown documentation.

Scans ``README.md`` and every ``docs/*.md`` file for markdown links and
inline-code path references, resolves each relative target against the
repo root (and against the containing file's directory), and exits
non-zero listing every target that does not exist.  External links
(``http(s)://``, ``mailto:``) and pure anchors (``#section``) are skipped;
an anchor suffix on a relative link (``FILE.md#section``) is checked for
the file part only.

Run locally:

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` markdown links; target captured up to the closing paren
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _resolve(target: str, source: Path) -> bool:
    """True iff ``target`` names an existing file or directory."""
    path = target.split("#", 1)[0]
    if not path:
        return True  # pure anchor into the same document
    candidates = [REPO / path, source.parent / path]
    return any(c.exists() for c in candidates)


def main() -> int:
    broken: list[tuple[Path, int, str]] = []
    checked = 0
    for doc in _doc_files():
        for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
            for match in _MD_LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_SKIP_PREFIXES):
                    continue
                checked += 1
                if not _resolve(target, doc):
                    broken.append((doc, lineno, target))
    rel = lambda p: p.relative_to(REPO)
    if broken:
        print(f"{len(broken)} broken intra-repo link(s):")
        for doc, lineno, target in broken:
            print(f"  {rel(doc)}:{lineno}: {target}")
        return 1
    print(
        f"docs links OK: {checked} intra-repo link(s) across "
        f"{len(_doc_files())} file(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
